// fsio_trace: inspector for Chrome trace-event JSON files written by
// fsio_sim --trace (and any other tool using WriteChromeTrace).
//
// Subcommands:
//   fsio_trace validate FILE           structural validation (CI smoke check)
//   fsio_trace summary FILE            per-category event/duration statistics
//   fsio_trace top FILE [--n=N]        the N longest spans (default 10)
//   fsio_trace hist FILE               per-category span-duration histograms
//   fsio_trace filter FILE --cat=PFX   re-emit only categories matching PFX
//
// The parser is a self-contained recursive-descent JSON reader — the tool
// must work on any spec-conformant trace, not just files this repo wrote,
// so it cannot assume our writer's formatting.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON model + parser.

struct JsonValue;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;
using JsonObject = std::vector<std::pair<std::string, std::shared_ptr<JsonValue>>>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return v.get();
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Returns null on malformed input and stores a message in error().
  std::shared_ptr<JsonValue> Parse() {
    auto value = ParseValue();
    if (value == nullptr) {
      return nullptr;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after top-level value");
      return nullptr;
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void Fail(const std::string& what) {
    if (error_.empty()) {
      std::size_t line = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        line += text_[i] == '\n' ? 1 : 0;
      }
      error_ = what + " (line " + std::to_string(line) + ")";
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  std::shared_ptr<JsonValue> ParseObject() {
    auto out = std::make_shared<JsonValue>();
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    if (Consume('}')) {
      return out;
    }
    for (;;) {
      SkipWs();
      auto key = ParseString();
      if (key == nullptr) {
        return nullptr;
      }
      if (!Consume(':')) {
        Fail("expected ':' in object");
        return nullptr;
      }
      auto value = ParseValue();
      if (value == nullptr) {
        return nullptr;
      }
      out->object.emplace_back(key->string, std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return out;
      }
      Fail("expected ',' or '}' in object");
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> ParseArray() {
    auto out = std::make_shared<JsonValue>();
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    if (Consume(']')) {
      return out;
    }
    for (;;) {
      auto value = ParseValue();
      if (value == nullptr) {
        return nullptr;
      }
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return out;
      }
      Fail("expected ',' or ']' in array");
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto out = std::make_shared<JsonValue>();
    out->type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // Keep the raw code point textually; enough for inspection.
            unsigned code = 0;
            for (int i = 0; i < 4 && pos_ < text_.size(); ++i) {
              const char h = text_[pos_++];
              code = code * 16 +
                     (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: c = esc; break;
        }
      }
      out->string += c;
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return nullptr;
    }
    ++pos_;  // closing '"'
    return out;
  }

  std::shared_ptr<JsonValue> ParseBool() {
    auto out = std::make_shared<JsonValue>();
    out->type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return out;
    }
    Fail("bad literal");
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_shared<JsonValue>();
    }
    Fail("bad literal");
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseNumber() {
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) {
      Fail("expected value");
      return nullptr;
    }
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    auto out = std::make_shared<JsonValue>();
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace model extracted from the JSON.

struct Event {
  char ph = '?';
  std::string cat;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  const JsonValue* json = nullptr;
};

struct Trace {
  std::vector<Event> events;       // data events (X/i/C/...), metadata excluded
  std::size_t metadata_events = 0;
  std::map<std::uint32_t, std::string> process_names;
};

// Validates one event object; appends a description of the first problem.
bool ValidateEvent(const JsonValue& e, std::size_t index, std::string* error) {
  const auto fail = [&](const std::string& what) {
    *error = "event " + std::to_string(index) + ": " + what;
    return false;
  };
  if (e.type != JsonValue::Type::kObject) {
    return fail("not an object");
  }
  const JsonValue* ph = e.Find("ph");
  if (ph == nullptr || ph->type != JsonValue::Type::kString || ph->string.size() != 1) {
    return fail("missing or malformed \"ph\"");
  }
  const JsonValue* name = e.Find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) {
    return fail("missing \"name\"");
  }
  if (ph->string[0] == 'M') {
    return true;  // metadata carries name/args only
  }
  const JsonValue* ts = e.Find("ts");
  if (ts == nullptr || ts->type != JsonValue::Type::kNumber || ts->number < 0.0) {
    return fail("missing or negative \"ts\"");
  }
  for (const char* key : {"pid", "tid"}) {
    const JsonValue* v = e.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber) {
      return fail(std::string("missing numeric \"") + key + "\"");
    }
  }
  if (ph->string[0] == 'X') {
    const JsonValue* dur = e.Find("dur");
    if (dur == nullptr || dur->type != JsonValue::Type::kNumber || dur->number < 0.0) {
      return fail("complete event without non-negative \"dur\"");
    }
  }
  return true;
}

bool LoadTrace(const std::string& path, std::shared_ptr<JsonValue>* root_out,
               Trace* trace, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  JsonParser parser(text);
  auto root = parser.Parse();
  if (root == nullptr) {
    *error = "JSON parse error: " + parser.error();
    return false;
  }
  if (root->type != JsonValue::Type::kObject) {
    *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root->Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    *error = "missing \"traceEvents\" array";
    return false;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = *events->array[i];
    if (!ValidateEvent(e, i, error)) {
      return false;
    }
    const char ph = e.Find("ph")->string[0];
    if (ph == 'M') {
      ++trace->metadata_events;
      const JsonValue* pid = e.Find("pid");
      const JsonValue* args = e.Find("args");
      if (e.Find("name")->string == "process_name" && pid != nullptr &&
          args != nullptr) {
        if (const JsonValue* value = args->Find("name"); value != nullptr) {
          trace->process_names[static_cast<std::uint32_t>(pid->number)] = value->string;
        }
      }
      continue;
    }
    Event out;
    out.ph = ph;
    out.name = e.Find("name")->string;
    if (const JsonValue* cat = e.Find("cat"); cat != nullptr) {
      out.cat = cat->string;
    }
    out.ts_us = e.Find("ts")->number;
    if (const JsonValue* dur = e.Find("dur"); dur != nullptr) {
      out.dur_us = dur->number;
    }
    out.pid = static_cast<std::uint32_t>(e.Find("pid")->number);
    out.tid = static_cast<std::uint32_t>(e.Find("tid")->number);
    out.json = &e;
    trace->events.push_back(std::move(out));
  }
  *root_out = std::move(root);
  return true;
}

// ---------------------------------------------------------------------------
// Subcommands.

int CmdValidate(const std::string& path) {
  std::shared_ptr<JsonValue> root;
  Trace trace;
  std::string error;
  if (!LoadTrace(path, &root, &trace, &error)) {
    std::fprintf(stderr, "fsio_trace: INVALID: %s\n", error.c_str());
    return 1;
  }
  std::map<std::string, std::size_t> categories;
  for (const Event& e : trace.events) {
    ++categories[e.cat];
  }
  std::printf("OK: %zu events (%zu metadata), %zu processes, %zu categories\n",
              trace.events.size() + trace.metadata_events, trace.metadata_events,
              trace.process_names.size(), categories.size());
  for (const auto& [cat, count] : categories) {
    std::printf("  %-12s %zu\n", cat.empty() ? "(none)" : cat.c_str(), count);
  }
  return 0;
}

int CmdSummary(const std::string& path) {
  std::shared_ptr<JsonValue> root;
  Trace trace;
  std::string error;
  if (!LoadTrace(path, &root, &trace, &error)) {
    std::fprintf(stderr, "fsio_trace: %s\n", error.c_str());
    return 1;
  }
  struct CatStats {
    std::size_t spans = 0;
    std::size_t instants = 0;
    std::size_t counters = 0;
    double total_dur = 0.0;
    double max_dur = 0.0;
  };
  std::map<std::string, CatStats> stats;
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  for (const Event& e : trace.events) {
    CatStats& s = stats[e.cat];
    switch (e.ph) {
      case 'X':
        ++s.spans;
        s.total_dur += e.dur_us;
        s.max_dur = std::max(s.max_dur, e.dur_us);
        break;
      case 'i':
      case 'I':
        ++s.instants;
        break;
      case 'C':
        ++s.counters;
        break;
      default:
        break;
    }
    if (!any || e.ts_us < t_min) {
      t_min = e.ts_us;
    }
    t_max = std::max(t_max, e.ts_us + e.dur_us);
    any = true;
  }
  std::printf("%zu events over [%.3f us, %.3f us] across %zu processes\n\n",
              trace.events.size(), t_min, t_max, trace.process_names.size());
  std::printf("%-12s %10s %10s %10s %12s %12s\n", "category", "spans", "instants",
              "counters", "total_us", "max_us");
  for (const auto& [cat, s] : stats) {
    std::printf("%-12s %10zu %10zu %10zu %12.3f %12.3f\n",
                cat.empty() ? "(none)" : cat.c_str(), s.spans, s.instants, s.counters,
                s.total_dur, s.max_dur);
  }
  return 0;
}

int CmdTop(const std::string& path, std::size_t n, const std::string& cat_prefix) {
  std::shared_ptr<JsonValue> root;
  Trace trace;
  std::string error;
  if (!LoadTrace(path, &root, &trace, &error)) {
    std::fprintf(stderr, "fsio_trace: %s\n", error.c_str());
    return 1;
  }
  std::vector<const Event*> spans;
  for (const Event& e : trace.events) {
    if (e.ph == 'X' && e.cat.compare(0, cat_prefix.size(), cat_prefix) == 0) {
      spans.push_back(&e);
    }
  }
  std::stable_sort(spans.begin(), spans.end(), [](const Event* a, const Event* b) {
    if (a->dur_us != b->dur_us) {
      return a->dur_us > b->dur_us;
    }
    return a->ts_us < b->ts_us;  // deterministic tie-break
  });
  if (spans.size() > n) {
    spans.resize(n);
  }
  std::printf("%-12s %-20s %6s %6s %14s %12s\n", "category", "name", "pid", "tid",
              "ts_us", "dur_us");
  for (const Event* e : spans) {
    std::printf("%-12s %-20s %6u %6u %14.3f %12.3f\n",
                e->cat.empty() ? "(none)" : e->cat.c_str(), e->name.c_str(), e->pid,
                e->tid, e->ts_us, e->dur_us);
  }
  return 0;
}

int CmdHist(const std::string& path, const std::string& cat_prefix) {
  std::shared_ptr<JsonValue> root;
  Trace trace;
  std::string error;
  if (!LoadTrace(path, &root, &trace, &error)) {
    std::fprintf(stderr, "fsio_trace: %s\n", error.c_str());
    return 1;
  }
  // Power-of-two duration buckets in nanoseconds, per category.
  constexpr int kBuckets = 24;  // up to ~8.4 ms
  std::map<std::string, std::vector<std::size_t>> hists;
  for (const Event& e : trace.events) {
    if (e.ph != 'X' || e.cat.compare(0, cat_prefix.size(), cat_prefix) != 0) {
      continue;
    }
    auto [it, inserted] = hists.try_emplace(e.cat);
    if (inserted) {
      it->second.assign(kBuckets, 0);
    }
    const double ns = e.dur_us * 1000.0;
    int bucket = 0;
    while (bucket + 1 < kBuckets && static_cast<double>(1ull << (bucket + 1)) <= ns) {
      ++bucket;
    }
    ++it->second[bucket];
  }
  for (const auto& [cat, hist] : hists) {
    std::size_t total = 0;
    std::size_t peak = 0;
    for (const std::size_t c : hist) {
      total += c;
      peak = std::max(peak, c);
    }
    std::printf("%s (%zu spans)\n", cat.empty() ? "(none)" : cat.c_str(), total);
    for (int b = 0; b < kBuckets; ++b) {
      if (hist[b] == 0) {
        continue;
      }
      const int bar =
          peak == 0 ? 0 : static_cast<int>(50.0 * static_cast<double>(hist[b]) /
                                           static_cast<double>(peak));
      std::printf("  %8lluns %8zu |%.*s\n",
                  static_cast<unsigned long long>(1ull << b), hist[b], bar,
                  "##################################################");
    }
  }
  return 0;
}

// Re-serializes one already-validated event object verbatim in structure
// (key order preserved by the parser's object representation).
void WriteJson(std::string* out, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      char buf[40];
      if (std::nearbyint(v.number) == v.number && std::fabs(v.number) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.6f", v.number);
      }
      *out += buf;
      break;
    }
    case JsonValue::Type::kString:
      *out += '"';
      for (const char c : v.string) {
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\r': *out += "\\r"; break;
          case '\t': *out += "\\t"; break;
          default: *out += c;
        }
      }
      *out += '"';
      break;
    case JsonValue::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const auto& e : v.array) {
        if (!first) {
          *out += ',';
        }
        first = false;
        WriteJson(out, *e);
      }
      *out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) {
          *out += ',';
        }
        first = false;
        *out += '"';
        *out += k;
        *out += "\":";
        WriteJson(out, *e);
      }
      *out += '}';
      break;
    }
  }
}

int CmdFilter(const std::string& path, const std::string& prefix) {
  std::shared_ptr<JsonValue> root;
  Trace trace;
  std::string error;
  if (!LoadTrace(path, &root, &trace, &error)) {
    std::fprintf(stderr, "fsio_trace: %s\n", error.c_str());
    return 1;
  }
  const JsonValue* events = root->Find("traceEvents");
  std::printf("{\"traceEvents\":[");
  bool first = true;
  std::string line;
  for (const auto& e : events->array) {
    const JsonValue* ph = e->Find("ph");
    bool keep = ph != nullptr && ph->string == "M";  // keep lane labels
    if (!keep) {
      const JsonValue* cat = e->Find("cat");
      keep = cat != nullptr &&
             cat->string.compare(0, prefix.size(), prefix) == 0;
    }
    if (!keep) {
      continue;
    }
    line.clear();
    WriteJson(&line, *e);
    std::printf("%s\n%s", first ? "" : ",", line.c_str());
    first = false;
  }
  std::printf("\n],\"displayTimeUnit\":\"ns\"}\n");
  return 0;
}

void PrintUsage() {
  std::puts(
      "usage: fsio_trace <command> <file> [options]\n"
      "  validate FILE        check Chrome trace-event structure; exit 1 if invalid\n"
      "  summary FILE         per-category span/instant/counter statistics\n"
      "  top FILE [--n=N] [--cat=P]   N longest spans (default 10)\n"
      "  hist FILE [--cat=P]  per-category span-duration histograms (log2 ns)\n"
      "  filter FILE --cat=P  re-emit only events whose category starts with P\n"
      "  --validate FILE      alias for 'validate'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    PrintUsage();
    return argc == 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }
  const std::string command = argv[1];
  // Options and the trace path may appear in any order after the command.
  std::string path;
  std::size_t top_n = 10;
  std::string cat_prefix;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      top_n = std::strtoull(argv[i] + 4, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cat=", 6) == 0) {
      cat_prefix = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    PrintUsage();
    return 2;
  }
  if (command == "validate" || command == "--validate") {
    return CmdValidate(path);
  }
  if (command == "summary") {
    return CmdSummary(path);
  }
  if (command == "top") {
    return CmdTop(path, top_n, cat_prefix);
  }
  if (command == "hist") {
    return CmdHist(path, cat_prefix);
  }
  if (command == "filter") {
    return CmdFilter(path, cat_prefix);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 2;
}
