// fsio_lint: repo-specific static checks the compiler cannot express.
//
// Usage:
//   fsio_lint [--rules=r1,r2] [--scope=src|tests|tools|bench|examples] \
//             [--list-rules] PATH...
//
// PATHs are files or directories (searched recursively for C++ sources),
// resolved relative to the working directory, which must be the repo root so
// rule scoping and include-guard expectations line up. Directories skip
// build*/ trees and the deliberately-dirty lint fixtures under tests/lint/;
// naming a fixture file explicitly lints it anyway (that is how
// run_lint_fixtures_check.cmake proves each rule fires).
//
// Rules (see DESIGN.md §9 for the rationale table):
//   raw-mutex        std::mutex/lock_guard/... anywhere but src/simcore/sync.h
//   wall-clock       sleep/wall-clock time in src/ (breaks determinism)
//   dma-pairing      gtest bodies that Map* DMA pages but never Unmap/Release,
//                    plus flow-sensitive early-return leak detection
//   discarded-fault-decision  FaultInjector::Sample() result dropped on the floor
//   stale-mode-count hardcoded protection-mode counts outside the mode table
//   raw-domain-id    domain ids flow as fsio::DomainId, never bare uint32_t
//   unchecked-descriptor-enqueue  NIC feeders in src/ wire the capability gate
//   include-guard    headers must carry FASTSAFE_<PATH>_H_ guards
//   include-hygiene  quoted includes repo-root-relative; never include a .cc
//
// Suppressions: `// fsio-lint: allow(rule-id)` on the offending line (for
// dma-pairing: anywhere in the test body), `// fsio-lint: file-allow(rule-id)`
// anywhere in the file. Every suppression should carry a justification.
//
// Diagnostics are `file:line: rule-id: message`, one per line; the exit code
// is non-zero iff any violation was reported. Like fsio_trace, the tool is
// self-contained: no dependency on the simulator libraries.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// One parsed source file: raw lines for lexical rules (includes, guards,
// directives) and a "code view" with comments and string/char literals
// blanked so token rules never fire on prose or quoted text.
struct SourceFile {
  std::string path;   // repo-relative, forward slashes (display + scoping)
  std::string scope;  // first path component: src, tests, tools, bench, ...
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::set<std::string> file_allows;
  std::map<std::size_t, std::set<std::string>> line_allows;  // 1-based line
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Splits `text` into lines (tolerating a missing trailing newline).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

// Returns the length of the raw-string prefix (R, uR, UR, LR, u8R) ending
// immediately before the quote at `quote`, or 0 if the quote does not open a
// raw string. An identifier that merely *ends* in one of those spellings
// (`FSIO_HDR"text"`, macro/string concatenation) is not a prefix: the
// character before the prefix must not be an identifier character.
std::size_t RawStringPrefixLen(const std::string& line, std::size_t quote) {
  if (quote == 0 || line[quote - 1] != 'R') {
    return 0;
  }
  std::size_t start = quote - 1;  // index of the 'R'
  if (start >= 2 && line[start - 2] == 'u' && line[start - 1] == '8') {
    start -= 2;  // u8R"..."
  } else if (start >= 1 && (line[start - 1] == 'u' || line[start - 1] == 'U' ||
                            line[start - 1] == 'L')) {
    start -= 1;  // uR"..." / UR"..." / LR"..."
  }
  if (start > 0 && IsIdentChar(line[start - 1])) {
    return 0;
  }
  return quote - start;
}

// Builds the code view: comments and string/char literal *contents* become
// spaces, everything else (including line structure) is preserved.
std::vector<std::string> BuildCodeView(const std::vector<std::string>& raw) {
  std::vector<std::string> code = raw;
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // raw-string delimiter, e.g. )foo"
  for (std::size_t li = 0; li < code.size(); ++li) {
    std::string& line = code[li];
    for (std::size_t i = 0; i < line.size(); ++i) {
      switch (state) {
        case State::kCode: {
          const char c = line[i];
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            for (std::size_t j = i; j < line.size(); ++j) {
              line[j] = ' ';
            }
            i = line.size();
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
            state = State::kBlockComment;
          } else if (c == '"' && RawStringPrefixLen(line, i) > 0) {
            // Raw string literal R"delim( ... )delim" (also u8R/uR/UR/LR).
            const std::size_t open = line.find('(', i + 1);
            const std::string delim =
                open == std::string::npos ? "" : line.substr(i + 1, open - i - 1);
            // The d-char-seq is at most 16 chars and cannot contain spaces,
            // quotes, backslashes, or parens. Anything else is not a valid
            // raw-string opener: fall back to the ordinary-string state so
            // the contents are still blanked instead of leaking as code.
            if (open == std::string::npos || delim.size() > 16 ||
                delim.find_first_of(" \t\"\\)") != std::string::npos) {
              state = State::kString;
            } else {
              raw_delim = ")" + delim + "\"";
              for (std::size_t j = i; j <= open; ++j) {
                line[j] = ' ';
              }
              i = open;
              state = State::kRawString;
            }
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          }
          break;
        }
        case State::kBlockComment:
          if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
            state = State::kCode;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kString:
          if (line[i] == '\\') {
            line[i] = ' ';
            if (i + 1 < line.size()) {
              line[i + 1] = ' ';
              ++i;
            }
          } else if (line[i] == '"') {
            state = State::kCode;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kChar:
          if (line[i] == '\\') {
            line[i] = ' ';
            if (i + 1 < line.size()) {
              line[i + 1] = ' ';
              ++i;
            }
          } else if (line[i] == '\'') {
            state = State::kCode;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kRawString: {
          const std::size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            for (std::size_t j = i; j < line.size(); ++j) {
              line[j] = ' ';
            }
            i = line.size();
          } else {
            for (std::size_t j = i; j < end + raw_delim.size(); ++j) {
              line[j] = ' ';
            }
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    // Line comments and unterminated string states reset per construct; a
    // string literal cannot span lines without continuation, treat as closed.
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
  }
  return code;
}

// Parses `fsio-lint: allow(a, b)` / `fsio-lint: file-allow(a)` directives.
void ParseDirectives(SourceFile* file) {
  for (std::size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& line = file->raw[li];
    std::size_t pos = line.find("fsio-lint:");
    while (pos != std::string::npos) {
      const std::size_t open = line.find('(', pos);
      if (open == std::string::npos) {
        break;
      }
      const std::size_t close = line.find(')', open);
      if (close == std::string::npos) {
        break;
      }
      const std::string verb = line.substr(pos + std::strlen("fsio-lint:"),
                                           open - pos - std::strlen("fsio-lint:"));
      std::string rules = line.substr(open + 1, close - open - 1);
      std::stringstream ss(rules);
      std::string rule;
      const bool file_wide = verb.find("file-allow") != std::string::npos;
      const bool line_wide = !file_wide && verb.find("allow") != std::string::npos;
      while (std::getline(ss, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](char c) { return std::isspace(static_cast<unsigned char>(c)); }),
                   rule.end());
        if (rule.empty()) {
          continue;
        }
        if (file_wide) {
          file->file_allows.insert(rule);
        } else if (line_wide) {
          file->line_allows[li + 1].insert(rule);
        }
      }
      pos = line.find("fsio-lint:", close);
    }
  }
}

bool Suppressed(const SourceFile& file, std::size_t line, const std::string& rule) {
  if (file.file_allows.count(rule) != 0) {
    return true;
  }
  auto it = file.line_allows.find(line);
  return it != file.line_allows.end() && it->second.count(rule) != 0;
}

// Finds `token` in `line` at identifier boundaries; returns npos if absent.
std::size_t FindToken(const std::string& line, const std::string& token) {
  std::size_t pos = line.find(token);
  while (pos != std::string::npos) {
    const bool lead_ok =
        pos == 0 || !IsIdentChar(line[pos - 1]) || !IsIdentChar(token.front());
    const std::size_t end = pos + token.size();
    const bool tail_ok =
        end >= line.size() || !IsIdentChar(line[end]) || !IsIdentChar(token.back());
    if (lead_ok && tail_ok) {
      return pos;
    }
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: raw-mutex — all locking goes through src/simcore/sync.h.

void CheckRawMutex(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.path == "src/simcore/sync.h") {
    return;  // the one sanctioned wrapper around the standard primitives
  }
  static const char* const kTokens[] = {
      "std::mutex",          "std::recursive_mutex",       "std::timed_mutex",
      "std::shared_mutex",   "std::recursive_timed_mutex", "std::shared_timed_mutex",
      "std::lock_guard",     "std::unique_lock",           "std::scoped_lock",
      "std::shared_lock",    "std::condition_variable",    "std::condition_variable_any",
  };
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    for (const char* token : kTokens) {
      if (FindToken(file.code[li], token) == std::string::npos) {
        continue;
      }
      if (!Suppressed(file, li + 1, "raw-mutex")) {
        diags->push_back({file.path, li + 1, "raw-mutex",
                          std::string(token) +
                              " outside src/simcore/sync.h; use fsio::Mutex / "
                              "fsio::MutexLock so Clang's thread-safety analysis "
                              "sees the lock"});
      }
      break;  // one diagnostic per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock — simulation code runs on simulated time only.

void CheckWallClock(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.scope != "src") {
    return;
  }
  static const char* const kTokens[] = {
      "sleep_for",      "sleep_until",    "usleep",
      "nanosleep",      "sleep(",         "system_clock",
      "steady_clock",   "high_resolution_clock", "gettimeofday",
      "clock_gettime",  "time(nullptr",   "time(NULL",
      "localtime",      "gmtime",         "clock()",
  };
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    for (const char* token : kTokens) {
      if (FindToken(file.code[li], token) == std::string::npos) {
        continue;
      }
      if (!Suppressed(file, li + 1, "wall-clock")) {
        diags->push_back({file.path, li + 1, "wall-clock",
                          std::string(token) +
                              " in src/: simulation code must use simulated "
                              "TimeNs (src/simcore/time.h), never wall-clock "
                              "time or sleeps (determinism)"});
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: dma-pairing — a gtest body that maps DMA pages must unmap them (or
// release its persistent descriptors), mirroring the dynamic oracle's
// "every Map has a matching Unmap" contract statically at call sites.
// MapPersistent() is exempt by design: persistent ring mappings are mapped
// once and never unmapped. Only member calls (`dma->MapPages(`,
// `dma_.MapPage(`) count as DmaApi use, so a fixture's own helper named
// MapPages() does not trip the rule.

// Finds `token` invoked as a member call (preceded by `.` or `->`).
bool FindMemberCall(const std::string& line, const std::string& token) {
  std::size_t pos = line.find(token);
  while (pos != std::string::npos) {
    const bool member =
        (pos >= 1 && line[pos - 1] == '.') ||
        (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
    if (member) {
      return true;
    }
    pos = line.find(token, pos + 1);
  }
  return false;
}

// The v2 rule is flow-sensitive: beyond the whole-body "maps but never
// unmaps" check, it walks each test body statement-by-statement and flags a
// `return` on a conditional path (inside an if/else/for/while/switch block,
// or a braceless `if (...) return;`) taken while more descriptors have been
// mapped/acquired than unmapped/released — the classic early-exit leak that
// a purely lexical count can never see because a later Unmap keeps the
// totals balanced. Returns inside lambdas defined in the body exit the
// lambda, not the test, and are ignored.

// True if the identifier `[begin, end)` in `line` is a DmaApi member call
// (preceded by `.` or `->`, followed by `(`).
bool IsMemberCallAt(const std::string& line, std::size_t begin, std::size_t end) {
  const bool member =
      (begin >= 1 && line[begin - 1] == '.') ||
      (begin >= 2 && line[begin - 2] == '-' && line[begin - 1] == '>');
  return member && end < line.size() && line[end] == '(';
}

void CheckDmaPairing(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.scope != "tests") {
    return;
  }
  static const char* const kTestMacros[] = {"TEST(", "TEST_F(", "TEST_P(", "TYPED_TEST("};
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    std::size_t macro_col = std::string::npos;
    for (const char* macro : kTestMacros) {
      macro_col = FindToken(file.code[li], macro);
      if (macro_col != std::string::npos) {
        break;
      }
    }
    if (macro_col == std::string::npos) {
      continue;
    }
    // Walk the test body in source order. `blocks` tags each open brace with
    // what introduced it: 'c' for a control-flow header, 'l' for a lambda,
    // 'o' for anything else (the body itself, plain scopes, initializers).
    // `pending` is the tag the *next* `{` will receive; it also marks a
    // braceless conditional so `if (x) return;` is caught without braces.
    std::vector<char> blocks;
    char pending = 'o';
    char prev_nonspace = '\0';
    int parens = 0;  // so `for (a; b; c)` semicolons don't clear `pending`
    bool entered = false;
    bool suppressed = false;
    std::size_t maps = 0, unmaps = 0, acquires = 0, releases = 0;
    std::vector<std::size_t> leak_returns;  // 1-based lines of leaky returns
    std::size_t end = li;
    for (std::size_t bi = li; bi < file.code.size(); ++bi) {
      const std::string& body = file.code[bi];
      if (file.line_allows.count(bi + 1) != 0 &&
          file.line_allows.at(bi + 1).count("dma-pairing") != 0) {
        suppressed = true;
      }
      for (std::size_t i = 0; i < body.size(); ++i) {
        const char c = body[i];
        if (IsIdentChar(c) && (i == 0 || !IsIdentChar(body[i - 1]))) {
          std::size_t w = i;
          while (w < body.size() && IsIdentChar(body[w])) {
            ++w;
          }
          const std::string word = body.substr(i, w - i);
          if (word == "if" || word == "else" || word == "for" || word == "while" ||
              word == "switch" || word == "do") {
            pending = 'c';
          } else if (word == "return") {
            const bool in_lambda =
                std::find(blocks.begin(), blocks.end(), 'l') != blocks.end();
            const bool conditional =
                pending == 'c' ||
                std::find(blocks.begin(), blocks.end(), 'c') != blocks.end();
            if (!in_lambda && conditional &&
                (maps > unmaps || acquires > releases)) {
              leak_returns.push_back(bi + 1);
            }
          } else if (IsMemberCallAt(body, i, w)) {
            if (word == "MapPages" || word == "MapPage") {
              ++maps;
            } else if (word == "UnmapDescriptor") {
              ++unmaps;
            } else if (word == "AcquirePersistentDescriptor") {
              ++acquires;
            } else if (word == "ReleasePersistentDescriptor") {
              ++releases;
            }
          }
          prev_nonspace = body[w - 1];
          i = w - 1;
          continue;
        }
        if (c == '{') {
          blocks.push_back(pending);
          pending = 'o';
          entered = true;
        } else if (c == '}') {
          if (!blocks.empty()) {
            blocks.pop_back();
          }
          pending = 'o';
        } else if (c == '(') {
          ++parens;
        } else if (c == ')') {
          --parens;
        } else if (c == ';') {
          if (parens <= 0) {
            pending = 'o';
          }
        } else if (c == '[') {
          // Lambda introducer unless it reads as a subscript (preceded by an
          // identifier, `]`, or `)`).
          if (prev_nonspace != ']' && prev_nonspace != ')' &&
              !IsIdentChar(prev_nonspace)) {
            pending = 'l';
          }
        }
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_nonspace = c;
        }
      }
      if (entered && blocks.empty()) {
        end = bi;
        break;
      }
    }
    if (!suppressed && file.file_allows.count("dma-pairing") == 0) {
      if (maps > 0 && unmaps == 0) {
        diags->push_back({file.path, li + 1, "dma-pairing",
                          "test body calls MapPages()/MapPage() but never "
                          "UnmapDescriptor(); unmap what you map (or justify with "
                          "a fsio-lint allow directive)"});
      }
      if (acquires > 0 && releases == 0) {
        diags->push_back({file.path, li + 1, "dma-pairing",
                          "test body calls AcquirePersistentDescriptor() but never "
                          "ReleasePersistentDescriptor()"});
      }
      for (std::size_t line : leak_returns) {
        diags->push_back({file.path, line, "dma-pairing",
                          "early return on a conditional path leaves mapped DMA "
                          "descriptors unreleased; unmap before returning (or "
                          "justify with a fsio-lint allow directive)"});
      }
    }
    li = end;
  }
}

// ---------------------------------------------------------------------------
// Rule: discarded-fault-decision — FaultInjector::Sample() both advances the
// kind's deterministic RNG/op-counter streams AND decides whether a fault
// fires, so a statement-position call whose FaultDecision is dropped on the
// floor is almost always a bug: the fault silently never takes effect while
// the plan's op windows still advance. Flags member calls `x.Sample(...)` /
// `x->Sample(...)` that begin a statement and whose full expression ends at
// `;`. Deliberate stream-advance-only calls carry a per-line allow directive
// (or a (void) cast, which the rule does not match).

void CheckDiscardedFaultDecision(const SourceFile& file, std::vector<Diagnostic>* diags) {
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    std::size_t pos = line.find("Sample(");
    while (pos != std::string::npos) {
      const std::size_t next = line.find("Sample(", pos + 1);
      // Member call only (`.Sample(` / `->Sample(`): a free function or a
      // local helper that happens to be called Sample is out of scope.
      const bool member = (pos >= 1 && line[pos - 1] == '.') ||
                          (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
      if (!member) {
        pos = next;
        continue;
      }
      // Walk back over the receiver chain (identifiers, `.`, `->`, `::`).
      std::size_t start = line[pos - 1] == '.' ? pos - 1 : pos - 2;
      while (start > 0) {
        const char c = line[start - 1];
        if (IsIdentChar(c) || c == '.' || c == ':') {
          --start;
        } else if (c == '>' && start >= 2 && line[start - 2] == '-') {
          start -= 2;
        } else {
          break;
        }
      }
      // The chain must begin the statement; `if (x.Sample(...)` or
      // `= x.Sample(...)` or `(void)x.Sample(...)` all use the result.
      std::size_t before = start;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(line[before - 1])) != 0) {
        --before;
      }
      bool stmt_start;
      if (before > 0) {
        stmt_start = line[before - 1] == ';' || line[before - 1] == '{' ||
                     line[before - 1] == '}';
      } else {
        // The call opens this line: it begins a statement only if the
        // previous non-blank line ended one (`;`, `{`, `}`) — a trailing
        // `=`, `(`, `,`, `&&` etc. means this is a continuation (e.g. the
        // initializer of `if (const FaultDecision d = ...;`).
        stmt_start = true;
        for (std::size_t prev = li; prev > 0; --prev) {
          const std::string& above = file.code[prev - 1];
          const std::size_t tail = above.find_last_not_of(" \t");
          if (tail == std::string::npos) {
            continue;
          }
          const char c = above[tail];
          stmt_start = c == ';' || c == '{' || c == '}';
          break;
        }
      }
      if (!stmt_start) {
        pos = next;
        continue;
      }
      // Find the call's matching ')' (the argument list may span lines) and
      // look at the first character after it: `;` means discarded, anything
      // else (`.fire`, `)`, `,`) means the result is consumed.
      int depth = 0;
      bool resolved = false;
      bool discarded = false;
      const std::size_t last_line = std::min(file.code.size(), li + 12);
      std::size_t col = pos + std::strlen("Sample");
      for (std::size_t ln = li; ln < last_line && !resolved; ++ln) {
        const std::string& scan = file.code[ln];
        for (std::size_t k = ln == li ? col : 0; k < scan.size(); ++k) {
          if (scan[k] == '(') {
            ++depth;
          } else if (scan[k] == ')') {
            --depth;
            if (depth == 0) {
              std::size_t m = k + 1;
              for (std::size_t tail = ln; tail < last_line; ++tail, m = 0) {
                const std::string& after = file.code[tail];
                while (m < after.size() &&
                       std::isspace(static_cast<unsigned char>(after[m])) != 0) {
                  ++m;
                }
                if (m < after.size()) {
                  discarded = after[m] == ';';
                  break;
                }
              }
              resolved = true;
              break;
            }
          }
        }
      }
      if (resolved && discarded && !Suppressed(file, li + 1, "discarded-fault-decision")) {
        diags->push_back(
            {file.path, li + 1, "discarded-fault-decision",
             "FaultInjector::Sample() result discarded: the fault can never fire; "
             "use the FaultDecision (or justify with a fsio-lint allow directive "
             "if only the sample stream must advance)"});
      }
      pos = next;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-guard — headers carry FASTSAFE_<PATH>_H_ guards.

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "FASTSAFE_";
  for (char c : path) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckIncludeGuard(const SourceFile& file, std::vector<Diagnostic>* diags) {
  const bool is_header = file.path.size() > 2 &&
                         (file.path.rfind(".h") == file.path.size() - 2 ||
                          file.path.rfind(".hpp") == file.path.size() - 4 ||
                          file.path.rfind(".hh") == file.path.size() - 3);
  if (!is_header || file.file_allows.count("include-guard") != 0) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    std::stringstream ss(file.code[li]);
    std::string hash, macro;
    ss >> hash >> macro;
    if (hash == "#pragma" && macro == "once" && !Suppressed(file, li + 1, "include-guard")) {
      diags->push_back({file.path, li + 1, "include-guard",
                        "#pragma once: this repo uses " + expected + " guards"});
      return;
    }
    if (hash != "#ifndef") {
      continue;
    }
    if (macro != expected && !Suppressed(file, li + 1, "include-guard")) {
      diags->push_back({file.path, li + 1, "include-guard",
                        "guard macro '" + macro + "' does not match path (expected " +
                            expected + ")"});
      return;
    }
    // The guard must be defined on the next non-blank line.
    for (std::size_t di = li + 1; di < file.code.size(); ++di) {
      std::stringstream ds(file.code[di]);
      std::string dhash, dmacro;
      ds >> dhash >> dmacro;
      if (dhash.empty()) {
        continue;
      }
      if (dhash != "#define" || dmacro != expected) {
        if (!Suppressed(file, di + 1, "include-guard")) {
          diags->push_back({file.path, di + 1, "include-guard",
                            "#ifndef " + expected + " must be followed by #define " +
                                expected});
        }
      }
      return;
    }
    return;
  }
  if (!Suppressed(file, 1, "include-guard")) {
    diags->push_back(
        {file.path, 1, "include-guard", "header has no include guard (expected " +
                                            expected + ")"});
  }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene — quoted includes are repo-root-relative, system
// headers use <>, and nobody includes a .cc file.

void CheckIncludeHygiene(const SourceFile& file, std::vector<Diagnostic>* diags) {
  static const char* const kRoots[] = {"src/", "tests/", "tools/", "bench/", "examples/"};
  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') {
      continue;
    }
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = line.find_first_not_of(" \t", pos + 7);
    if (pos == std::string::npos) {
      continue;
    }
    const char open = line[pos];
    const char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
    if (close == '\0') {
      continue;  // computed include (macro): out of scope
    }
    const std::size_t end = line.find(close, pos + 1);
    if (end == std::string::npos) {
      continue;
    }
    const std::string target = line.substr(pos + 1, end - pos - 1);
    if (Suppressed(file, li + 1, "include-hygiene")) {
      continue;
    }
    const bool repo_rooted =
        std::any_of(std::begin(kRoots), std::end(kRoots), [&](const char* root) {
          return target.rfind(root, 0) == 0;
        });
    if (target.size() > 3 && (target.rfind(".cc") == target.size() - 3 ||
                              target.rfind(".cpp") == target.size() - 4)) {
      diags->push_back({file.path, li + 1, "include-hygiene",
                        "never #include an implementation file (" + target + ")"});
    } else if (open == '"' && !repo_rooted) {
      diags->push_back({file.path, li + 1, "include-hygiene",
                        "quoted include \"" + target +
                            "\" must be repo-root-relative (src/..., tests/..., "
                            "tools/..., bench/..., examples/...)"});
    } else if (open == '<' && repo_rooted) {
      diags->push_back({file.path, li + 1, "include-hygiene",
                        "repo header <" + target + "> must use quotes"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: std-function-event — hot-path scheduling passes concrete callables.
// The event core stores typed trampolines with inline payloads (DESIGN.md
// §11); wrapping a callback in std::function before handing it to
// ScheduleAt/ScheduleAfter re-introduces a type-erased heap allocation per
// event, exactly the cost the arena removed. The reference scheduler keeps
// the old std::function representation on purpose — it exists to be
// differentially tested against — so it is the one sanctioned user.

void CheckStdFunctionEvent(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.scope != "src") {
    return;
  }
  if (file.path == "src/simcore/reference_event_queue.h" ||
      file.path == "src/simcore/reference_event_queue.cc") {
    return;  // the legacy heap scheduler, kept for differential testing
  }
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    if (FindToken(line, "std::function") == std::string::npos) {
      continue;
    }
    if (FindToken(line, "ScheduleAt") == std::string::npos &&
        FindToken(line, "ScheduleAfter") == std::string::npos) {
      continue;
    }
    if (!Suppressed(file, li + 1, "std-function-event")) {
      diags->push_back({file.path, li + 1, "std-function-event",
                        "std::function passed to ScheduleAt/ScheduleAfter in "
                        "src/: schedule a concrete lambda so the event rides "
                        "the typed-callback arena (DESIGN.md sec. 11), not a "
                        "type-erased heap closure"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-domain-id — protection-domain identities flow as fsio::DomainId
// (src/tenant/domain.h), never as a bare uint32_t. The wrapper is what keeps
// a domain id from being silently mixed with weights, counts, or tags — the
// exact confusion the multi-tenant isolation invariant depends on never
// happening. Flags a `uint32_t` (or `std::uint32_t`) declaration whose
// declared name contains "domain" but not the plural "domains" (a count of
// domains is an integer, not an identity). Template-argument and cast
// contexts (`static_cast<std::uint32_t>(...)`, `Vector<std::uint32_t>`) are
// out of scope: widening an id at a serialization boundary is deliberate.

void CheckRawDomainId(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.path == "src/tenant/domain.h") {
    return;  // the DomainId wrapper itself stores the raw value
  }
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    std::size_t pos = line.find("uint32_t");
    while (pos != std::string::npos) {
      const bool lead_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      std::size_t after = pos + std::strlen("uint32_t");
      const bool tail_ok = after >= line.size() || !IsIdentChar(line[after]);
      if (!lead_ok || !tail_ok) {
        pos = line.find("uint32_t", pos + 1);
        continue;
      }
      // Skip declarator punctuation to the declared name; a non-identifier
      // next token means a template argument, cast, or functional-cast
      // context, which the rule leaves alone.
      while (after < line.size() &&
             (std::isspace(static_cast<unsigned char>(line[after])) != 0 ||
              line[after] == '&' || line[after] == '*')) {
        ++after;
      }
      if (after >= line.size() || !IsIdentChar(line[after])) {
        pos = line.find("uint32_t", after);
        continue;
      }
      std::string ident;
      std::size_t end = after;
      while (end < line.size() && IsIdentChar(line[end])) {
        ident.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(line[end]))));
        ++end;
      }
      if (ident.find("domain") != std::string::npos &&
          ident.find("domains") == std::string::npos &&
          !Suppressed(file, li + 1, "raw-domain-id")) {
        diags->push_back({file.path, li + 1, "raw-domain-id",
                          "'" + ident +
                              "' holds a domain id as bare uint32_t; use "
                              "fsio::DomainId (src/tenant/domain.h) so ids "
                              "cannot be mixed with other integers"});
      }
      pos = line.find("uint32_t", end);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-descriptor-enqueue — src/ code that feeds descriptors to
// the NIC (PostRxDescriptor/EnqueueTx member calls) must also wire or
// perform the capability gate in the same file: SetCapabilityCheck() on the
// NIC, or an explicit GateOnCapability()/DeviceCheckCapability() on the
// descriptor path. In kCapability mode the IOMMU is bypassed, so a NIC fed
// descriptors without the gate silently loses the only safety check the
// mode has — exactly the skip_capability_check bug, introduced structurally
// instead of via the knob. The NIC implementation is exempt: it IS the gate.

void CheckUncheckedDescriptorEnqueue(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.scope != "src") {
    return;
  }
  if (file.path == "src/nic/nic.h" || file.path == "src/nic/nic.cc") {
    return;  // the gate's own declaration and implementation
  }
  bool gated = false;
  for (const std::string& line : file.code) {
    if (FindMemberCall(line, "SetCapabilityCheck(") ||
        FindMemberCall(line, "GateOnCapability(") ||
        FindMemberCall(line, "DeviceCheckCapability(")) {
      gated = true;
      break;
    }
  }
  if (gated) {
    return;
  }
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    if (!FindMemberCall(line, "PostRxDescriptor(") && !FindMemberCall(line, "EnqueueTx(")) {
      continue;
    }
    if (!Suppressed(file, li + 1, "unchecked-descriptor-enqueue")) {
      diags->push_back({file.path, li + 1, "unchecked-descriptor-enqueue",
                        "descriptors enqueued to a NIC that is never wired for "
                        "capability mode: call SetCapabilityCheck() (or gate the "
                        "path with DeviceCheckCapability()) so kCapability keeps "
                        "its only safety check"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stale-mode-count — no hardcoded protection-mode counts. Prose like
// "sweeps all N modes" or "the N IOMMU modes" (N a literal number) in
// comments, help strings, or code goes stale the day a mode is added or
// removed, and nothing ever fails: the sweep silently under-covers. The
// canonical tables are ProtectionMode/kProtectionModeCount in
// src/driver/protection.h and kAllModes in tests/test_util.h; reference
// those (or spell the modes out) instead of a literal count. Scans RAW
// lines: stale counts hide in comments and usage strings, exactly the text
// the code view blanks.

// Case-insensitively matches `word` at `*pos` in `line` (identifier-boundary
// end); on success advances `*pos` past the word and any following spaces.
bool SkipWordCI(const std::string& line, std::size_t* pos, const char* word) {
  const std::size_t len = std::strlen(word);
  if (*pos + len > line.size()) {
    return false;
  }
  for (std::size_t k = 0; k < len; ++k) {
    if (std::tolower(static_cast<unsigned char>(line[*pos + k])) !=
        std::tolower(static_cast<unsigned char>(word[k]))) {
      return false;
    }
  }
  const std::size_t end = *pos + len;
  if (end < line.size() && IsIdentChar(line[end])) {
    return false;
  }
  *pos = end;
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '-')) {
    ++*pos;
  }
  return true;
}

void CheckStaleModeCount(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.path == "src/driver/protection.h" || file.path == "tests/test_util.h") {
    return;  // the canonical mode tables themselves
  }
  for (std::size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& line = file.raw[li];
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
        continue;
      }
      if (i > 0 && (IsIdentChar(line[i - 1]) || line[i - 1] == '.')) {
        while (i + 1 < line.size() && IsIdentChar(line[i + 1])) {
          ++i;  // inside an identifier or a dotted number; skip the run
        }
        continue;
      }
      std::size_t j = i;
      while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j])) != 0) {
        ++j;
      }
      std::size_t k = j;
      while (k < line.size() && (line[k] == ' ' || line[k] == '-')) {
        ++k;
      }
      // Optional qualifier between the count and "modes".
      if (!SkipWordCI(line, &k, "protection")) {
        SkipWordCI(line, &k, "iommu");
      }
      if (!SkipWordCI(line, &k, "modes") && !SkipWordCI(line, &k, "mode")) {
        i = j - 1;
        continue;
      }
      if (!Suppressed(file, li + 1, "stale-mode-count")) {
        diags->push_back({file.path, li + 1, "stale-mode-count",
                          "hardcoded protection-mode count; reference the "
                          "canonical mode table (ProtectionMode in "
                          "src/driver/protection.h, kAllModes in "
                          "tests/test_util.h) or spell the modes out"});
      }
      break;  // one diagnostic per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

struct RuleInfo {
  const char* id;
  const char* summary;
  void (*check)(const SourceFile&, std::vector<Diagnostic>*);
};

const RuleInfo kRules[] = {
    {"raw-mutex", "all locking goes through src/simcore/sync.h (annotated Mutex)",
     &CheckRawMutex},
    {"wall-clock", "no sleeps or wall-clock time in src/ (simulated time only)",
     &CheckWallClock},
    {"dma-pairing", "gtest bodies that Map* DMA pages must Unmap*/Release*",
     &CheckDmaPairing},
    {"discarded-fault-decision",
     "FaultInjector::Sample() results must be used (the fault never fires otherwise)",
     &CheckDiscardedFaultDecision},
    {"std-function-event",
     "src/ hot paths schedule concrete callables, never std::function",
     &CheckStdFunctionEvent},
    {"raw-domain-id",
     "protection-domain ids flow as fsio::DomainId, never bare uint32_t",
     &CheckRawDomainId},
    {"unchecked-descriptor-enqueue",
     "src/ NIC descriptor feeders must wire the capability gate (SetCapabilityCheck)",
     &CheckUncheckedDescriptorEnqueue},
    {"stale-mode-count",
     "no hardcoded protection-mode counts; reference the canonical mode table",
     &CheckStaleModeCount},
    {"include-guard", "headers carry FASTSAFE_<PATH>_H_ guards", &CheckIncludeGuard},
    {"include-hygiene", "repo-root-relative quoted includes; never include .cc",
     &CheckIncludeHygiene},
};

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

// True for directories the recursive walk must not descend into.
bool SkippedDir(const std::string& rel) {
  const std::string name = fs::path(rel).filename().string();
  if (!name.empty() && name.front() == '.') {
    return true;
  }
  if (name.rfind("build", 0) == 0) {
    return true;
  }
  // The fixtures are deliberately dirty; they are linted one-by-one (with
  // explicit paths) by run_lint_fixtures_check.cmake, never in a sweep.
  return rel == "tests/lint" || rel.rfind("tests/lint/", 0) == 0;
}

std::string RelPath(const fs::path& path) {
  std::error_code ec;
  fs::path rel = fs::proximate(path, fs::current_path(), ec);
  if (ec) {
    rel = path;
  }
  return rel.generic_string();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rules=r1,r2] [--scope=SCOPE] [--list-rules] PATH...\n"
               "Run from the repo root; see DESIGN.md section 9.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  for (const RuleInfo& rule : kRules) {
    enabled.insert(rule.id);
  }
  std::string forced_scope;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules) {
        std::printf("%-16s %s\n", rule.id, rule.summary);
      }
      return 0;
    } else if (arg.rfind("--rules=", 0) == 0) {
      enabled.clear();
      std::stringstream ss(arg.substr(std::strlen("--rules=")));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        const bool known = std::any_of(std::begin(kRules), std::end(kRules),
                                       [&](const RuleInfo& r) { return rule == r.id; });
        if (!known) {
          std::fprintf(stderr, "fsio_lint: unknown rule '%s' (try --list-rules)\n",
                       rule.c_str());
          return 2;
        }
        enabled.insert(rule);
      }
    } else if (arg.rfind("--scope=", 0) == 0) {
      forced_scope = arg.substr(std::strlen("--scope="));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "fsio_lint: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    return Usage(argv[0]);
  }

  // Expand inputs into the file list (explicit files always included).
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    const fs::path path(input);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      std::vector<std::string> found;
      fs::recursive_directory_iterator it(path, fs::directory_options::skip_permission_denied, ec),
          end;
      for (; it != end; it.increment(ec)) {
        const std::string rel = RelPath(it->path());
        if (it->is_directory() && SkippedDir(rel)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && HasSourceExtension(it->path())) {
          found.push_back(rel);
        }
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else if (fs::exists(path, ec)) {
      files.push_back(RelPath(path));
    } else {
      std::fprintf(stderr, "fsio_lint: no such file or directory: %s\n", input.c_str());
      return 2;
    }
  }

  std::vector<Diagnostic> diags;
  std::size_t scanned = 0;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fsio_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    SourceFile file;
    file.path = path;
    const std::size_t slash = path.find('/');
    file.scope = forced_scope.empty()
                     ? (slash == std::string::npos ? "" : path.substr(0, slash))
                     : forced_scope;
    file.raw = SplitLines(buffer.str());
    file.code = BuildCodeView(file.raw);
    ParseDirectives(&file);
    ++scanned;

    for (const RuleInfo& rule : kRules) {
      if (enabled.count(rule.id) != 0) {
        rule.check(file, &diags);
      }
    }
  }

  for (const Diagnostic& d : diags) {
    std::printf("%s:%zu: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (diags.empty()) {
    std::printf("fsio_lint: clean (%zu files scanned)\n", scanned);
    return 0;
  }
  std::printf("fsio_lint: %zu violation(s) (%zu files scanned)\n", diags.size(), scanned);
  return 1;
}
