// Randomized DMA-safety fuzzer: every protection mode crossed with a matrix
// of deterministic fault plans.
//
// For each (mode, plan) pair the harness builds the full driver-side stack
// (page table, IOMMU, IOVA and frame allocators, DmaApi, root complex),
// wires in a seeded FaultInjector, SafetyOracle and InvariantRegistry, and
// runs a randomized map/access/unmap workload while the plan injects
// environment faults (lost/stalled invalidations, walker latency spikes,
// allocation failures, duplicate completions, delayed deferred flushes,
// use-after-release replays).
//
// The run then asserts the paper's safety matrix:
//   * strictly-safe modes (strict, strict+preserve, strict+contig, F&S,
//     capability) and iommu-off produce ZERO oracle violations under EVERY
//     plan;
//   * linux-deferred produces use-after-unmap violations under the
//     delayed-flush plan (the window the paper's design closes);
//   * hugepage-persistent produces use-after-unmap violations under the
//     use-after-release plan (the related-work safety trade);
//   * registered structural invariants (page-table consistency, chunk
//     accounting, no overlapping live maps) hold in every run;
//   * the driver's graceful-degradation path engages (retries > 0) for
//     strict and F&S under the invalidation stall/drop plan;
//   * injected duplicate completions are detected as double-unmaps.
//
// All randomness flows from --seed through SplitMix64 streams, so two runs
// with the same arguments print byte-identical output (checked by ctest and
// by --selftest-determinism, which runs the suite twice in-process).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/driver/dma_api.h"
#include "src/driver/protection.h"
#include "src/faults/fault_injector.h"
#include "src/faults/invariant_registry.h"
#include "src/faults/safety_oracle.h"
#include "src/iommu/iommu.h"
#include "src/iova/iova_allocator.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/memory_system.h"
#include "src/pagetable/io_page_table.h"
#include "src/pcie/root_complex.h"
#include "src/simcore/rng.h"
#include "src/stats/counters.h"

namespace fsio {
namespace {

struct FuzzOptions {
  std::uint64_t ops = 2500;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct RunResult {
  std::string report;       // deterministic per-run text
  std::uint64_t violations = 0;
  std::uint64_t use_after_unmap = 0;
  std::uint64_t check_failures = 0;   // from registered CheckAll() sweeps
  std::uint64_t hard_failures = 0;    // ReportFailure (double unmap etc.)
  std::uint64_t double_unmaps = 0;
  std::uint64_t inv_retries = 0;
  std::uint64_t inv_fallbacks = 0;
  std::uint64_t duplicates_injected = 0;
};

std::vector<FaultPlan> BuildPlans(std::uint64_t seed) {
  std::vector<FaultPlan> plans;

  FaultPlan baseline;
  baseline.name = "baseline";
  baseline.seed = seed;
  plans.push_back(baseline);

  // Lost and stalled invalidation-queue requests: the first six requests are
  // dropped outright (forcing the full retry ladder including the global-
  // flush fallback), later ones are dropped with p=0.2 or stalled past the
  // driver's 50 us wait deadline.
  FaultPlan inv;
  inv.name = "inv-stall-drop";
  inv.seed = seed;
  FaultSpec drop_burst;
  drop_burst.kind = FaultKind::kInvalidationDrop;
  drop_burst.op_end = 6;
  inv.Add(drop_burst);
  FaultSpec drop_tail;
  drop_tail.kind = FaultKind::kInvalidationDrop;
  drop_tail.op_start = 6;
  drop_tail.probability = 0.2;
  inv.Add(drop_tail);
  FaultSpec stall;
  stall.kind = FaultKind::kInvalidationStall;
  stall.probability = 0.3;
  stall.magnitude_ns = 120'000;  // beyond inv_wait_timeout_ns: looks lost
  inv.Add(stall);
  plans.push_back(inv);

  // Translation-path slowdowns: latency only, never a correctness hazard.
  FaultPlan slow;
  slow.name = "walker-backpressure";
  slow.seed = seed;
  FaultSpec spike;
  spike.kind = FaultKind::kWalkerLatencySpike;
  spike.probability = 0.2;
  spike.magnitude_ns = 3'000;
  slow.Add(spike);
  FaultSpec bp;
  bp.kind = FaultKind::kRootComplexBackpressure;
  bp.probability = 0.1;
  bp.magnitude_ns = 5'000;
  slow.Add(bp);
  plans.push_back(slow);

  // Transient allocator failures early in the run; the driver's retry
  // helpers must mask them.
  FaultPlan alloc;
  alloc.name = "alloc-pressure";
  alloc.seed = seed;
  FaultSpec iova_fail;
  iova_fail.kind = FaultKind::kIovaExhaustion;
  iova_fail.probability = 0.4;
  iova_fail.op_end = 400;
  alloc.Add(iova_fail);
  FaultSpec frame_fail;
  frame_fail.kind = FaultKind::kFrameAllocFailure;
  frame_fail.probability = 0.3;
  frame_fail.op_end = 400;
  alloc.Add(frame_fail);
  plans.push_back(alloc);

  // Misbehaving device: duplicate and late descriptor completions. The
  // driver must detect the induced double-unmaps instead of corrupting its
  // accounting.
  FaultPlan chaos;
  chaos.name = "completion-chaos";
  chaos.seed = seed;
  FaultSpec dup;
  dup.kind = FaultKind::kDescCompletionDuplicate;
  dup.probability = 0.25;
  chaos.Add(dup);
  FaultSpec reorder;
  reorder.kind = FaultKind::kDescCompletionReorder;
  reorder.probability = 0.25;
  reorder.magnitude_ns = 2'000;
  chaos.Add(reorder);
  plans.push_back(chaos);

  // Deferred-mode flush timer starved: the flush-queue drain is postponed,
  // stretching every queued IOVA's use-after-unmap window.
  FaultPlan flushd;
  flushd.name = "delayed-flush";
  flushd.seed = seed;
  FaultSpec delay;
  delay.kind = FaultKind::kDeferredFlushDelay;
  delay.max_fires = 3;
  flushd.Add(delay);
  plans.push_back(flushd);

  // Device keeps DMA-ing into persistent-pool buffers after the driver
  // released them — the hazard the hugepage-persistent scheme accepts.
  FaultPlan uar;
  uar.name = "use-after-release";
  uar.seed = seed;
  FaultSpec touch;
  touch.kind = FaultKind::kUseAfterRelease;
  touch.probability = 0.5;
  touch.magnitude_ns = 0;
  uar.Add(touch);
  plans.push_back(uar);

  return plans;
}

constexpr ProtectionMode kAllModes[] = {
    ProtectionMode::kOff,           ProtectionMode::kStrict,
    ProtectionMode::kDeferred,      ProtectionMode::kStrictPreserve,
    ProtectionMode::kStrictContig,  ProtectionMode::kFastSafe,
    ProtectionMode::kHugepagePersistent, ProtectionMode::kCapability,
};

// Appends at most `limit` lines of `trace`, with a deterministic elision
// marker for the rest, keeping reports readable under failure storms.
void AppendTrace(std::ostringstream* os, const std::string& trace, std::size_t limit) {
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < trace.size() && lines < limit) {
    const std::size_t nl = trace.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? trace.size() : nl + 1;
    os->write(trace.data() + pos, static_cast<std::streamsize>(end - pos));
    pos = end;
    ++lines;
  }
  if (pos < trace.size()) {
    std::size_t rest = 0;
    for (std::size_t i = pos; i < trace.size(); ++i) {
      rest += trace[i] == '\n' ? 1 : 0;
    }
    *os << "  ... (" << rest << " more)\n";
  }
}

RunResult RunOne(ProtectionMode mode, const FaultPlan& plan, const FuzzOptions& opt) {
  StatsRegistry stats;
  FaultInjector injector(plan, &stats);
  SafetyOracle oracle(&stats);
  InvariantRegistry invariants(&stats);

  MemoryConfig mem_config;
  MemorySystem memory(mem_config, &stats);
  IoPageTable page_table;
  Iommu iommu(IommuConfig{}, &memory, &page_table, &stats);
  iommu.SetFaultInjector(&injector);
  iommu.SetSafetyOracle(&oracle);

  IovaAllocatorConfig iova_config;
  iova_config.num_cores = 4;
  IovaAllocator iova(iova_config, &stats);
  iova.SetFaultInjector(&injector);

  FrameAllocator frames(/*scramble=*/false, plan.seed);
  frames.SetFaultInjector(&injector);

  DmaApiConfig dma_config;
  dma_config.mode = mode;
  dma_config.num_cores = 4;
  DmaApi dma(dma_config, &iova, &page_table, &iommu, &stats);
  dma.SetFaultInjector(&injector);
  dma.SetSafetyOracle(&oracle);
  dma.RegisterInvariants(&invariants);

  RootComplex rc(PcieConfig{}, UsesIommu(mode) ? &iommu : nullptr, &memory, &stats);
  rc.SetFaultInjector(&injector);

  invariants.Register("pagetable.consistency",
                      [&page_table](std::string* d) { return page_table.CheckConsistency(d); });
  invariants.Register("oracle.no_overlap", [&oracle](std::string* d) {
    if (oracle.overlap_maps() != 0) {
      *d = "overlapping live map observed";
      return false;
    }
    return true;
  });

  // Workload state. Descriptors are 64-page in normal modes and 512-page
  // (one hugepage) in persistent mode.
  const bool persistent = mode == ProtectionMode::kHugepagePersistent;
  const bool capability = mode == ProtectionMode::kCapability;
  struct Desc {
    std::vector<DmaMapping> mappings;
  };
  std::deque<Desc> live;
  std::deque<Desc> recently_unmapped;  // replay targets (deferred hazard)
  std::deque<Desc> released;           // persistent descriptors given back

  Rng rng(plan.seed * 0x51'7cc1b727220a95ULL + static_cast<std::uint64_t>(mode) + 1);
  TimeNs now = 0;
  std::uint64_t check_failures = 0;
  std::uint64_t skipped_maps = 0;

  auto alloc_frame = [&frames]() {
    // Retry injected transient failures; terminates with probability 1
    // because failure probabilities in every plan are < 1.
    for (;;) {
      const PhysAddr f = frames.AllocFrame();
      if (f != kNullFrame) {
        return f;
      }
    }
  };
  auto alloc_huge = [&frames]() {
    for (;;) {
      const PhysAddr f = frames.AllocHugeFrame();
      if (f != kNullFrame) {
        return f;
      }
    }
  };
  auto access = [&](const Desc& desc, std::size_t page, std::uint32_t len) {
    if (desc.mappings.empty()) {
      return;
    }
    const DmaMapping& m = desc.mappings[page % desc.mappings.size()];
    if (capability && !dma.DeviceCheckCapability(m.iova, 1, now).allowed) {
      return;  // the device refuses the descriptor: no DMA is issued
    }
    rc.DmaWrite(now, {DmaSegment{m.iova, len}});
  };

  for (std::uint64_t op = 0; op < opt.ops; ++op) {
    now += 200 + rng.NextBelow(800);
    const std::uint64_t dice = rng.NextBelow(100);

    if (dice < 30) {
      // Map one descriptor and warm a few of its pages on the device side.
      Desc desc;
      const std::uint32_t core = static_cast<std::uint32_t>(rng.NextBelow(4));
      if (persistent) {
        desc.mappings = dma.AcquirePersistentDescriptor(core, alloc_huge).mappings;
      } else {
        std::vector<PhysAddr> phys;
        phys.reserve(64);
        for (int i = 0; i < 64; ++i) {
          phys.push_back(alloc_frame());
        }
        desc.mappings = dma.MapPages(core, phys).mappings;
      }
      if (desc.mappings.empty()) {
        ++skipped_maps;  // allocator exhaustion out-lasted the retry budget
        continue;
      }
      for (int i = 0; i < 8; ++i) {
        access(desc, static_cast<std::size_t>(rng.NextBelow(desc.mappings.size())), 256);
      }
      live.push_back(std::move(desc));
    } else if (dice < 55) {
      // Touch a random live descriptor.
      if (!live.empty()) {
        access(live[rng.NextBelow(live.size())],
               static_cast<std::size_t>(rng.NextBelow(64)), 256);
      }
    } else if (dice < 75) {
      // Retire a descriptor: access its first page (warming the IOTLB so a
      // deferred-mode replay is served by a stale entry), then unmap or
      // release it. Injected completion faults are applied here: a reorder
      // delays the completion, a duplicate replays it immediately.
      if (live.empty()) {
        continue;
      }
      const std::size_t pick = rng.NextBelow(live.size());
      Desc desc = std::move(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      access(desc, 0, 256);
      const std::uint32_t core = static_cast<std::uint32_t>(rng.NextBelow(4));
      if (persistent) {
        dma.ReleasePersistentDescriptor(core, desc.mappings);
        released.push_back(std::move(desc));
        if (released.size() > 8) {
          released.pop_front();
        }
      } else {
        if (injector.Sample(FaultKind::kDescCompletionReorder, now).fire) {
          now += 2'000;  // the CQE shows up late
        }
        const bool duplicate =
            injector.Sample(FaultKind::kDescCompletionDuplicate, now).fire;
        dma.UnmapDescriptor(core, desc.mappings, now);
        if (duplicate) {
          dma.UnmapDescriptor(core, desc.mappings, now);
        }
        recently_unmapped.push_back(std::move(desc));
        if (recently_unmapped.size() > 4) {
          recently_unmapped.pop_front();
        }
      }
    } else if (dice < 90) {
      // Tx datapath: map a single page, fetch it, unmap it.
      const std::uint32_t core = static_cast<std::uint32_t>(rng.NextBelow(4));
      const auto result = dma.MapPage(core, alloc_frame());
      if (result.mappings.empty()) {
        ++skipped_maps;
        continue;
      }
      if (!capability ||
          dma.DeviceCheckCapability(result.mappings[0].iova, 1, now).allowed) {
        rc.DmaRead(now, {DmaSegment{result.mappings[0].iova, 1024}});
      }
      dma.UnmapDescriptor(core, result.mappings, now);
    } else {
      // Replay: the device touches a recently retired descriptor. Strictly
      // safe modes fault harmlessly (caches were invalidated before the
      // unmap returned); deferred mode hits stale IOTLB state. Released
      // persistent descriptors are replayed only when the plan injects
      // use-after-release.
      if (persistent) {
        if (!released.empty() &&
            injector.Sample(FaultKind::kUseAfterRelease, now).fire) {
          access(released.back(), 0, 256);
        }
      } else if (!recently_unmapped.empty()) {
        access(recently_unmapped.back(), 0, 256);
      }
    }

    if ((op & 0xff) == 0xff) {
      check_failures += invariants.CheckAll(now);
    }
  }
  check_failures += invariants.CheckAll(now);

  RunResult out;
  out.violations = oracle.total_violations();
  out.use_after_unmap = oracle.count(SafetyViolationKind::kUseAfterUnmap);
  out.check_failures = check_failures;
  out.hard_failures = invariants.failure_count() - check_failures;
  out.double_unmaps = stats.Value("dma.double_unmap");
  out.inv_retries = stats.Value("dma.inv_retries");
  out.inv_fallbacks = stats.Value("dma.inv_fallback_flushes");
  out.duplicates_injected = injector.fired(FaultKind::kDescCompletionDuplicate);

  std::ostringstream os;
  os << "=== mode=" << ProtectionModeName(mode) << " plan=" << plan.name << " ===\n";
  os << "ops=" << opt.ops << " violations=" << out.violations
     << " use_after_unmap=" << out.use_after_unmap
     << " stale_ptcache=" << oracle.count(SafetyViolationKind::kStalePtcachePointer)
     << " reclaimed_walk=" << oracle.count(SafetyViolationKind::kReclaimedTableWalk)
     << "\n";
  os << "check_failures=" << out.check_failures << " hard_failures=" << out.hard_failures
     << " double_unmap=" << out.double_unmaps << " skipped_maps=" << skipped_maps << "\n";
  os << "inv: retries=" << out.inv_retries << " timeouts=" << stats.Value("dma.inv_timeouts")
     << " fallback_flushes=" << out.inv_fallbacks
     << " dropped=" << stats.Value("iommu.inv_dropped")
     << " masked_allocs=" << stats.Value("dma.fault_masked") << "\n";
  os << "faults:";
  for (int k = 0; k < static_cast<int>(FaultKind::kCount); ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (injector.fired(kind) != 0) {
      os << " " << FaultKindName(kind) << "=" << injector.fired(kind);
    }
  }
  os << "\n";
  if (opt.verbose || out.violations != 0) {
    AppendTrace(&os, oracle.TraceString(), 40);
  }
  if (opt.verbose || out.check_failures != 0) {
    AppendTrace(&os, invariants.TraceString(), 40);
  }
  out.report = os.str();
  return out;
}

// Runs the full mode x plan matrix, printing each run's report and checking
// the safety-matrix expectations. Returns the number of failed expectations.
int RunSuite(const FuzzOptions& opt, std::string* output) {
  std::ostringstream all;
  int failures = 0;
  auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      all << "EXPECTATION FAILED: " << what << "\n";
    }
  };

  const std::vector<FaultPlan> plans = BuildPlans(opt.seed);
  for (ProtectionMode mode : kAllModes) {
    for (const FaultPlan& plan : plans) {
      const RunResult r = RunOne(mode, plan, opt);
      all << r.report;

      const std::string tag =
          std::string(ProtectionModeName(mode)) + " / " + plan.name;
      if (IsStrictlySafe(mode) || mode == ProtectionMode::kOff) {
        expect(r.violations == 0, tag + ": strictly-safe mode must have 0 violations");
      }
      expect(r.check_failures == 0, tag + ": structural invariants must hold");
      if (mode == ProtectionMode::kDeferred && plan.name == "delayed-flush") {
        expect(r.violations > 0,
               tag + ": deferred mode must violate under delayed flushes");
        expect(r.use_after_unmap == r.violations,
               tag + ": deferred violations must all be use-after-unmap");
      }
      if (mode == ProtectionMode::kHugepagePersistent &&
          plan.name == "use-after-release") {
        expect(r.violations > 0,
               tag + ": persistent pools must violate under use-after-release");
      }
      if (plan.name == "inv-stall-drop" &&
          (mode == ProtectionMode::kStrict || mode == ProtectionMode::kFastSafe)) {
        expect(r.inv_retries > 0, tag + ": invalidation retry path must engage");
        expect(r.inv_fallbacks > 0, tag + ": global-flush fallback must engage");
      }
      if (plan.name == "completion-chaos" && r.duplicates_injected > 0 &&
          mode != ProtectionMode::kOff) {
        // kOff performs no unmap bookkeeping, so there is nothing to detect.
        expect(r.double_unmaps > 0,
               tag + ": injected duplicate completions must be detected");
      }
      if (plan.name != "completion-chaos") {
        expect(r.hard_failures == 0, tag + ": no hard failures without duplicates");
      }
    }
  }
  all << (failures == 0 ? "SAFETY MATRIX OK\n" : "SAFETY MATRIX FAILED\n");
  *output = all.str();
  return failures;
}

int Main(int argc, char** argv) {
  FuzzOptions opt;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      opt.ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strcmp(argv[i], "--selftest-determinism") == 0) {
      selftest = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ops N] [--seed S] [--verbose] "
                   "[--selftest-determinism]\n",
                   argv[0]);
      return 2;
    }
  }

  std::string output;
  int failures = RunSuite(opt, &output);
  if (selftest) {
    std::string second;
    failures += RunSuite(opt, &second);
    if (second != output) {
      std::fprintf(stdout, "%s", output.c_str());
      std::fprintf(stdout, "DETERMINISM FAILED: two same-seed runs diverged\n");
      return 1;
    }
    output += "DETERMINISM OK\n";
  }
  std::fprintf(stdout, "%s", output.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fsio

int main(int argc, char** argv) { return fsio::Main(argc, argv); }
