// IOTLB eviction-timing side channel probe (IOTLB-SC), and its defense.
//
// Two protection domains share one IOMMU. The attacker primes the IOTLB
// with its own translations, the victim either performs DMA translations or
// stays idle (one secret bit per trial), and the attacker then re-probes
// its working set and counts IOTLB misses — the classic prime+probe
// eviction channel, observable from a device because shared-IOTLB misses
// cost extra page-table walks (time).
//
// The tool estimates the channel capacity empirically: over N trials with a
// pseudorandom secret bit, it binarizes the probe's miss count and reports
// the mutual information I(secret; observation) in bits/trial.
//
//   * iotlb_partition=none       — victim activity evicts attacker lines:
//                                  the observation tracks the secret and
//                                  leakage approaches 1 bit/trial.
//   * iotlb_partition=per_domain — insertion victims are confined to the
//                                  inserting domain's way partition, so the
//                                  attacker's residency is independent of
//                                  the victim: leakage collapses to ~0.
//
// Exit code 0 always (reporting tool); use --expect-defense to fail (exit 1)
// unless the unpartitioned channel leaks and the partitioned one does not —
// the CI assertion mode.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/iommu/iommu.h"
#include "src/mem/memory_system.h"
#include "src/pagetable/io_page_table.h"
#include "src/simcore/rng.h"
#include "src/stats/counters.h"
#include "src/tenant/domain.h"

namespace fsio {
namespace {

struct Options {
  std::uint64_t trials = 256;
  std::uint32_t victim_pages = 32;
  std::uint64_t seed = 1;
  std::string partition = "both";  // "none" | "per_domain" | "both"
  bool expect_defense = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: fsio_sidechan [options]\n"
               "  --trials N           prime+probe trials per configuration (default 256)\n"
               "  --victim-pages N     victim working set per active trial (default 32)\n"
               "  --seed N             secret-bit RNG seed (default 1)\n"
               "  --partition MODE     none | per_domain | both (default both)\n"
               "  --expect-defense     exit 1 unless leakage(none) > 0.5 bits and\n"
               "                       leakage(per_domain) < 0.05 bits\n");
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trials" && need(i)) {
      opt->trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--victim-pages" && need(i)) {
      opt->victim_pages = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--seed" && need(i)) {
      opt->seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--partition" && need(i)) {
      opt->partition = argv[++i];
    } else if (a == "--expect-defense") {
      opt->expect_defense = true;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "fsio_sidechan: unknown argument '%s'\n", a.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

struct ChannelResult {
  double leakage_bits = 0.0;
  double avg_miss_active = 0.0;
  double avg_miss_idle = 0.0;
  std::uint64_t trials = 0;
};

// Mutual information of the binary (secret, observation) channel from joint
// counts, in bits.
double BinaryMutualInformation(const std::uint64_t joint[2][2]) {
  double total = 0.0;
  for (int s = 0; s < 2; ++s) {
    for (int o = 0; o < 2; ++o) {
      total += static_cast<double>(joint[s][o]);
    }
  }
  if (total == 0.0) {
    return 0.0;
  }
  double mi = 0.0;
  for (int s = 0; s < 2; ++s) {
    for (int o = 0; o < 2; ++o) {
      const double pso = static_cast<double>(joint[s][o]) / total;
      if (pso == 0.0) {
        continue;
      }
      const double ps =
          static_cast<double>(joint[s][0] + joint[s][1]) / total;
      const double po =
          static_cast<double>(joint[0][o] + joint[1][o]) / total;
      mi += pso * std::log2(pso / (ps * po));
    }
  }
  return mi < 0.0 ? 0.0 : mi;
}

ChannelResult RunChannel(const Options& opt, bool partitioned) {
  StatsRegistry stats;
  MemorySystem mem(MemoryConfig{}, &stats);
  IoPageTable host_pt;
  IommuConfig config;
  if (partitioned) {
    config.iotlb_partitions = 2;
  }
  Iommu iommu(config, &mem, &host_pt, &stats);

  IoPageTable attacker_pt;
  IoPageTable victim_pt;
  const DomainId attacker = iommu.AddDomain(&attacker_pt);
  const DomainId victim = iommu.AddDomain(&victim_pt);

  // The attacker's probe set fills the IOTLB; the victim's working set is
  // disjoint IOVA space (higher pages) backed by its own page table.
  const std::uint32_t probe_pages = config.iotlb_sets * config.iotlb_ways;
  std::vector<Iova> probe;
  probe.reserve(probe_pages);
  for (std::uint32_t i = 0; i < probe_pages; ++i) {
    const Iova iova = static_cast<Iova>(i) * kPageSize;
    attacker_pt.Map(iova, static_cast<PhysAddr>(0x10000000ULL + iova));
    probe.push_back(iova);
  }
  std::vector<Iova> victim_set;
  victim_set.reserve(opt.victim_pages);
  for (std::uint32_t i = 0; i < opt.victim_pages; ++i) {
    const Iova iova = static_cast<Iova>(0x40000 + i) * kPageSize;
    victim_pt.Map(iova, static_cast<PhysAddr>(0x80000000ULL + iova));
    victim_set.push_back(iova);
  }

  TimeNs t = 0;
  // Space translations past the longest walk so pending-walk coalescing
  // never merges the probe's accesses.
  auto translate = [&](DomainId d, Iova iova) {
    t += 3000;
    return iommu.Translate(d, iova, t);
  };

  Rng rng(opt.seed ^ 0x51dec4a7ULL);
  std::vector<std::uint64_t> misses(opt.trials, 0);
  std::vector<int> secrets(opt.trials, 0);
  double sum_active = 0.0;
  double sum_idle = 0.0;
  std::uint64_t n_active = 0;
  std::uint64_t n_idle = 0;

  for (std::uint64_t trial = 0; trial < opt.trials; ++trial) {
    // Prime: bring the full probe set in.
    for (Iova iova : probe) {
      translate(attacker, iova);
    }
    // Victim step: one secret bit of activity.
    const int secret = static_cast<int>(rng.NextBelow(2));
    if (secret != 0) {
      for (Iova iova : victim_set) {
        translate(victim, iova);
      }
    }
    // Probe: count how many attacker lines were evicted.
    std::uint64_t miss = 0;
    for (Iova iova : probe) {
      if (!translate(attacker, iova).iotlb_hit) {
        ++miss;
      }
    }
    misses[trial] = miss;
    secrets[trial] = secret;
    if (secret != 0) {
      sum_active += static_cast<double>(miss);
      ++n_active;
    } else {
      sum_idle += static_cast<double>(miss);
      ++n_idle;
    }
  }

  // Binarize at the midpoint of the observed range; a flat channel (no
  // observable difference) yields zero mutual information by construction.
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (std::uint64_t m : misses) {
    lo = m < lo ? m : lo;
    hi = m > hi ? m : hi;
  }
  std::uint64_t joint[2][2] = {{0, 0}, {0, 0}};
  const double threshold = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
  for (std::uint64_t trial = 0; trial < opt.trials; ++trial) {
    const int obs = (lo != hi && static_cast<double>(misses[trial]) > threshold) ? 1 : 0;
    ++joint[secrets[trial]][obs];
  }

  ChannelResult out;
  out.trials = opt.trials;
  out.leakage_bits = BinaryMutualInformation(joint);
  out.avg_miss_active = n_active == 0 ? 0.0 : sum_active / static_cast<double>(n_active);
  out.avg_miss_idle = n_idle == 0 ? 0.0 : sum_idle / static_cast<double>(n_idle);
  return out;
}

int Main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    return 2;
  }
  const bool run_none = opt.partition == "both" || opt.partition == "none";
  const bool run_part = opt.partition == "both" || opt.partition == "per_domain";
  if (!run_none && !run_part) {
    std::fprintf(stderr, "fsio_sidechan: --partition must be none|per_domain|both\n");
    return 2;
  }

  std::printf("iotlb_partition,trials,avg_miss_active,avg_miss_idle,leakage_bits\n");
  ChannelResult none_result;
  ChannelResult part_result;
  if (run_none) {
    none_result = RunChannel(opt, /*partitioned=*/false);
    std::printf("none,%llu,%.2f,%.2f,%.4f\n",
                static_cast<unsigned long long>(none_result.trials),
                none_result.avg_miss_active, none_result.avg_miss_idle,
                none_result.leakage_bits);
  }
  if (run_part) {
    part_result = RunChannel(opt, /*partitioned=*/true);
    std::printf("per_domain,%llu,%.2f,%.2f,%.4f\n",
                static_cast<unsigned long long>(part_result.trials),
                part_result.avg_miss_active, part_result.avg_miss_idle,
                part_result.leakage_bits);
  }

  if (opt.expect_defense) {
    if (!run_none || !run_part) {
      std::fprintf(stderr, "fsio_sidechan: --expect-defense needs --partition both\n");
      return 2;
    }
    const bool leaks = none_result.leakage_bits > 0.5;
    const bool defended = part_result.leakage_bits < 0.05;
    if (leaks && defended) {
      std::printf("defense check PASSED: %.4f bits shared vs %.4f bits partitioned\n",
                  none_result.leakage_bits, part_result.leakage_bits);
      return 0;
    }
    std::printf("defense check FAILED: %.4f bits shared vs %.4f bits partitioned\n",
                none_result.leakage_bits, part_result.leakage_bits);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fsio

int main(int argc, char** argv) { return fsio::Main(argc, argv); }
