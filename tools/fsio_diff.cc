// Differential fuzzer CLI: drives the real IOMMU/page-table/IOVA/DMA-API
// stack against the deliberately-simple RefModel in lockstep (see
// src/refmodel/) across seeds, protection modes and both IOVA allocator
// configurations.
//
// Modes of operation:
//   * default sweep          — every (seed, mode, rcache) cell must agree;
//                              any divergence is shrunk to a minimal repro,
//                              printed (and optionally written via
//                              --repro-out), exit 1.
//   * --bug X --expect-divergence
//                            — oracle self-test: EVERY cell must diverge
//                              (the injected bug must be caught), the first
//                              divergence is shrunk and must fit in
//                              --max-repro-ops, and the serialized repro
//                              must replay (Serialize -> Parse -> Run still
//                              diverges). Exit 0 only when all of that holds.
//   * --replay FILE          — re-runs a previously written repro file and
//                              reports whether the divergence reproduces.
//
// Output is deterministic for fixed arguments.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/driver/protection.h"
#include "src/refmodel/diff_harness.h"

namespace fsio {
namespace {

struct Options {
  std::uint64_t seeds = 8;
  std::uint64_t seed_base = 1;
  std::uint32_t ops = 1500;
  std::string mode = "all";      // "all" or one mode token
  std::string rcache = "both";   // "both" | "on" | "off"
  std::uint32_t pages_per_chunk = 64;
  std::uint32_t num_cores = 4;
  std::uint32_t domains = 1;
  InjectedBug bug = InjectedBug::kNone;
  bool expect_divergence = false;
  std::size_t max_repro_ops = 20;
  std::string repro_out;
  std::string replay;
  bool quiet = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: fsio_diff [options]\n"
               "  --seeds N             seeds per (mode, rcache) cell (default 8)\n"
               "  --seed-base N         first seed value (default 1)\n"
               "  --ops N               operations per run (default 1500)\n"
               "  --mode all|TOKEN      protection mode sweep or a single mode\n"
               "                        (off strict deferred strict-preserve\n"
               "                         strict-contig fast-safe hugepage-persistent\n"
               "                         capability)\n"
               "  --rcache both|on|off  IOVA allocator cache configurations\n"
               "  --pages-per-chunk N   Rx descriptor size in pages (default 64)\n"
               "  --num-cores N         driver cores (default 4)\n"
               "  --domains N           protection domains sharing the IOMMU (default 1;\n"
               "                        >=2 checks per-tenant semantics + isolation)\n"
               "  --bug TOKEN           inject a driver/hardware bug (none use-after-unmap\n"
               "                        skip-invalidation early-reclaim untagged-iotlb\n"
               "                        skip-capability-check)\n"
               "  --expect-divergence   require every run to diverge (oracle self-test)\n"
               "  --max-repro-ops N     shrunken repro size budget (default 20)\n"
               "  --repro-out FILE      write the shrunken repro here on divergence\n"
               "  --replay FILE         replay a repro file instead of sweeping\n"
               "  --quiet               only print the final summary line\n");
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds" && need(i)) {
      opt->seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed-base" && need(i)) {
      opt->seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--ops" && need(i)) {
      opt->ops = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--mode" && need(i)) {
      opt->mode = argv[++i];
    } else if (a == "--rcache" && need(i)) {
      opt->rcache = argv[++i];
    } else if (a == "--pages-per-chunk" && need(i)) {
      opt->pages_per_chunk = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--num-cores" && need(i)) {
      opt->num_cores = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--domains" && need(i)) {
      opt->domains = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (opt->domains == 0) {
        std::fprintf(stderr, "fsio_diff: --domains must be positive\n");
        return false;
      }
    } else if (a == "--bug" && need(i)) {
      if (!ParseBugToken(argv[++i], &opt->bug)) {
        std::fprintf(stderr, "fsio_diff: unknown bug token '%s'\n", argv[i]);
        return false;
      }
    } else if (a == "--expect-divergence") {
      opt->expect_divergence = true;
    } else if (a == "--max-repro-ops" && need(i)) {
      opt->max_repro_ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--repro-out" && need(i)) {
      opt->repro_out = argv[++i];
    } else if (a == "--replay" && need(i)) {
      opt->replay = argv[++i];
    } else if (a == "--quiet") {
      opt->quiet = true;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "fsio_diff: unknown argument '%s'\n", a.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

std::vector<ProtectionMode> ModesFor(const Options& opt, bool* ok) {
  *ok = true;
  if (opt.mode == "all") {
    return {ProtectionMode::kOff,           ProtectionMode::kStrict,
            ProtectionMode::kDeferred,      ProtectionMode::kStrictPreserve,
            ProtectionMode::kStrictContig,  ProtectionMode::kFastSafe,
            ProtectionMode::kHugepagePersistent, ProtectionMode::kCapability};
  }
  ProtectionMode m;
  if (!ParseModeToken(opt.mode, &m)) {
    std::fprintf(stderr, "fsio_diff: unknown mode token '%s'\n", opt.mode.c_str());
    *ok = false;
    return {};
  }
  return {m};
}

std::vector<bool> RcachesFor(const Options& opt, bool* ok) {
  *ok = true;
  if (opt.rcache == "both") {
    return {true, false};
  }
  if (opt.rcache == "on") {
    return {true};
  }
  if (opt.rcache == "off") {
    return {false};
  }
  std::fprintf(stderr, "fsio_diff: --rcache must be both|on|off\n");
  *ok = false;
  return {};
}

// Shrinks, prints, and (optionally) writes the repro. Returns the shrink
// outcome so callers can validate size and replayability.
DifferentialHarness::ShrinkOutcome HandleDivergence(const Options& opt, const DiffConfig& config,
                                                    const std::vector<DiffOp>& ops,
                                                    const DiffResult& result) {
  std::printf("DIVERGENCE mode=%s rcache=%d seed=%llu bug=%s at op %zu:\n  %s\n",
              ModeToken(config.mode), config.enable_rcache ? 1 : 0,
              static_cast<unsigned long long>(config.seed), InjectedBugName(config.bug),
              result.fail_index, result.message.c_str());
  DifferentialHarness::ShrinkOutcome shrunk = DifferentialHarness::Shrink(config, ops, result);
  std::printf("shrunk to %zu ops in %u runs:\n", shrunk.ops.size(), shrunk.runs);
  for (const DiffOp& op : shrunk.ops) {
    std::printf("  %s core=%u arg=%llu\n", OpKindName(op.kind), op.core,
                static_cast<unsigned long long>(op.arg));
  }
  std::printf("  => %s\n", shrunk.result.message.c_str());
  if (!opt.repro_out.empty()) {
    std::ofstream out(opt.repro_out);
    out << DifferentialHarness::Serialize(config, shrunk.ops);
    std::printf("repro written to %s\n", opt.repro_out.c_str());
  }
  return shrunk;
}

// Serialize -> Parse -> Run must still diverge, or the repro is useless.
bool ReproRoundTrips(const DiffConfig& config, const std::vector<DiffOp>& ops) {
  const std::string text = DifferentialHarness::Serialize(config, ops);
  DiffConfig parsed;
  std::vector<DiffOp> parsed_ops;
  std::string error;
  if (!DifferentialHarness::Parse(text, &parsed, &parsed_ops, &error)) {
    std::printf("repro round-trip FAILED to parse: %s\n", error.c_str());
    return false;
  }
  const DiffResult replay = DifferentialHarness::Run(parsed, parsed_ops);
  if (!replay.diverged) {
    std::printf("repro round-trip FAILED to reproduce the divergence\n");
    return false;
  }
  return true;
}

int Replay(const Options& opt) {
  std::ifstream in(opt.replay);
  if (!in) {
    std::fprintf(stderr, "fsio_diff: cannot open %s\n", opt.replay.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  DiffConfig config;
  std::vector<DiffOp> ops;
  std::string error;
  if (!DifferentialHarness::Parse(buf.str(), &config, &ops, &error)) {
    std::fprintf(stderr, "fsio_diff: bad repro file: %s\n", error.c_str());
    return 2;
  }
  const DiffResult result = DifferentialHarness::Run(config, ops);
  if (result.diverged) {
    std::printf("replay: DIVERGED at op %zu (%zu ops): %s\n", result.fail_index, ops.size(),
                result.message.c_str());
    return 0;
  }
  std::printf("replay: no divergence over %zu ops (mode=%s rcache=%d bug=%s)\n", ops.size(),
              ModeToken(config.mode), config.enable_rcache ? 1 : 0, InjectedBugName(config.bug));
  return 1;
}

int Main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    return 2;
  }
  if (!opt.replay.empty()) {
    return Replay(opt);
  }
  bool ok = true;
  const std::vector<ProtectionMode> modes = ModesFor(opt, &ok);
  if (!ok) {
    return 2;
  }
  const std::vector<bool> rcaches = RcachesFor(opt, &ok);
  if (!ok) {
    return 2;
  }
  if (opt.expect_divergence && opt.bug == InjectedBug::kNone) {
    std::fprintf(stderr, "fsio_diff: --expect-divergence requires --bug\n");
    return 2;
  }

  std::uint64_t runs = 0;
  std::uint64_t diverged = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_dmas = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_stale = 0;
  bool self_test_ok = true;
  bool first_divergence_handled = false;

  for (ProtectionMode mode : modes) {
    for (bool rcache : rcaches) {
      for (std::uint64_t s = 0; s < opt.seeds; ++s) {
        DiffConfig config;
        config.mode = mode;
        config.enable_rcache = rcache;
        config.seed = opt.seed_base + s;
        config.num_ops = opt.ops;
        config.pages_per_chunk = opt.pages_per_chunk;
        config.num_cores = opt.num_cores;
        config.num_domains = opt.domains;
        config.bug = opt.bug;
        const std::vector<DiffOp> ops = DifferentialHarness::GenerateOps(config);
        const DiffResult result = DifferentialHarness::Run(config, ops);
        ++runs;
        total_ops += result.ops_executed;
        total_dmas += result.dmas;
        total_faults += result.faults;
        total_stale += result.stale_uses;
        if (result.diverged) {
          ++diverged;
          if (!opt.expect_divergence) {
            DifferentialHarness::ShrinkOutcome shrunk =
                HandleDivergence(opt, config, ops, result);
            ReproRoundTrips(config, shrunk.ops);
            return 1;
          }
          if (!first_divergence_handled) {
            first_divergence_handled = true;
            DifferentialHarness::ShrinkOutcome shrunk =
                HandleDivergence(opt, config, ops, result);
            if (shrunk.ops.size() > opt.max_repro_ops) {
              std::printf("self-test FAILED: repro has %zu ops, budget is %zu\n",
                          shrunk.ops.size(), opt.max_repro_ops);
              self_test_ok = false;
            }
            if (!ReproRoundTrips(config, shrunk.ops)) {
              self_test_ok = false;
            }
          }
        } else if (opt.expect_divergence) {
          std::printf("self-test FAILED: bug=%s NOT detected (mode=%s rcache=%d seed=%llu)\n",
                      InjectedBugName(opt.bug), ModeToken(mode), rcache ? 1 : 0,
                      static_cast<unsigned long long>(config.seed));
          self_test_ok = false;
        }
        if (!opt.quiet && !result.diverged) {
          std::printf("ok mode=%s rcache=%d seed=%llu ops=%llu maps=%llu unmaps=%llu "
                      "dmas=%llu faults=%llu stale=%llu\n",
                      ModeToken(mode), rcache ? 1 : 0,
                      static_cast<unsigned long long>(config.seed),
                      static_cast<unsigned long long>(result.ops_executed),
                      static_cast<unsigned long long>(result.maps),
                      static_cast<unsigned long long>(result.unmaps),
                      static_cast<unsigned long long>(result.dmas),
                      static_cast<unsigned long long>(result.faults),
                      static_cast<unsigned long long>(result.stale_uses));
        }
      }
    }
  }

  std::printf("fsio_diff: %llu runs, %llu diverged, %llu ops, %llu dmas "
              "(%llu faults, %llu stale uses)\n",
              static_cast<unsigned long long>(runs), static_cast<unsigned long long>(diverged),
              static_cast<unsigned long long>(total_ops),
              static_cast<unsigned long long>(total_dmas),
              static_cast<unsigned long long>(total_faults),
              static_cast<unsigned long long>(total_stale));
  if (opt.expect_divergence) {
    if (diverged == runs && self_test_ok) {
      std::printf("self-test PASSED: bug=%s detected in all %llu runs\n",
                  InjectedBugName(opt.bug), static_cast<unsigned long long>(runs));
      return 0;
    }
    std::printf("self-test FAILED: bug=%s detected in %llu/%llu runs\n", InjectedBugName(opt.bug),
                static_cast<unsigned long long>(diverged), static_cast<unsigned long long>(runs));
    return 1;
  }
  return diverged == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fsio

int main(int argc, char** argv) { return fsio::Main(argc, argv); }
