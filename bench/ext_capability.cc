// Extension: kernel-bypass capability protection vs the IOMMU designs.
//
// kCapability turns the IOMMU off and gates every descriptor at the NIC with
// a capability-table check instead: map grants, unmap revokes (quiescing
// in-flight descriptors), and a revoked buffer fails the check in the same
// op window — the strict safety property without per-page walks or
// invalidation waits. The interesting question is the cost crossover: the
// IOMMU modes pay a walk-cost tax per IOTLB miss (calibrated lm ~ 197 ns),
// the capability design pays a flat check cost per descriptor page.
//
// The sweep runs the colocated iperf + netperf-RPC shape (Fig. 9) for
// kCapability across a range of per-page check costs, next to the kOff /
// kStrict / kFastSafe baselines, and reports throughput, the RPC p99 tail,
// and the end-to-end oracle verdict (violations must be zero everywhere:
// kOff is unsafe by construction but no stale use can be *observed* without
// an IOMMU; the three protected rows assert their guarantee end to end).
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/rpc.h"
#include "src/stats/histogram.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    TimeNs check_ns;  // capability rows only; 0 = mode has no check
  };
  std::vector<Point> points;
  for (TimeNs check_ns : bench::Sweep<TimeNs>({20, 40, 80, 160, 320})) {
    points.push_back(Point{ProtectionMode::kCapability, check_ns});
  }
  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    points.push_back(Point{mode, 0});
  }

  struct Row {
    double gbps = 0;
    double drop_pct = 0;
    double reads_per_page = 0;
    Histogram rpc_latency;
    std::uint64_t violations = 0;
  };
  const auto rows = bench::ParallelSweep<Row>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 6;  // 5 iperf + 1 RPC core
    if (points[i].check_ns > 0) {
      config.host.dma.capability.check_ns = points[i].check_ns;
    }
    Testbed testbed(config);
    testbed.cluster().EnableFaultHarness();
    StartIperf(&testbed, 5);
    auto rpc = std::make_unique<RequestResponseApp>(
        &testbed, NetperfRpcConfig(/*size=*/4096, /*rpc_core=*/5));
    rpc->Start();
    testbed.RunUntil(bench::WarmupNs());
    rpc->mutable_latency().Reset();
    const WindowResult window = testbed.MeasureWindow(1, bench::WindowNs());

    Row row;
    row.gbps = window.goodput_gbps;
    row.drop_pct = window.drop_rate * 100.0;
    row.reads_per_page = window.mem_reads_per_page;
    row.rpc_latency = rpc->latency();
    row.violations = testbed.cluster().oracle(0)->total_violations() +
                     testbed.cluster().oracle(1)->total_violations();
    return row;
  });

  Table table({"mode", "check_ns", "safety", "gbps", "drop_%", "reads/pg", "rpc_p99_us",
               "violations"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Row& row = rows[i];
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddCell(points[i].check_ns > 0 ? std::to_string(points[i].check_ns) : "-");
    table.AddCell(IsStrictlySafe(points[i].mode) ? "strict" : "none");
    table.AddNumber(row.gbps, 1);
    table.AddNumber(row.drop_pct, 2);
    table.AddNumber(row.reads_per_page, 2);
    table.AddNumber(static_cast<double>(row.rpc_latency.Percentile(99)) / 1000.0, 1);
    table.AddInteger(static_cast<long long>(row.violations));
  }
  bench::EmitFigure(
      "Extension: capability-checked kernel bypass vs IOMMU protection\n"
      "(check-cost sweep; expected: flat check cost beats per-miss walk\n"
      "costs until the check dominates the per-page budget; 0 violations)\n\n",
      table);
  return 0;
}
