// Figure 3 (a-e): memory protection overheads vs Rx ring buffer size.
//
// iperf, 5 flows; ring size in {256, 512, 1024, 2048} MTU packets. Paper
// results: growing PTcache-L3 misses (larger IOVA working set), roughly
// constant IOTLB misses, up to ~15 additional percentage points of
// throughput degradation at 2048.
#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  bench::RunIperfFigure<std::uint32_t>(
      "Figure 3: memory protection overheads vs ring buffer size\n"
      "(iperf, 5 flows, 4KB MTU; paper: L3 misses grow with the working set)\n\n",
      "ring", bench::WithCapability({ProtectionMode::kOff, ProtectionMode::kStrict}),
      bench::Sweep({256u, 512u, 1024u, 2048u}), /*flows_or_zero=*/5,
      [](TestbedConfig* config, std::uint32_t ring, std::uint32_t*) {
        config->cores = 5;
        config->ring_size_pkts = ring;
      });
  return 0;
}
