// Figure 3 (a-e): memory protection overheads vs Rx ring buffer size.
//
// iperf, 5 flows; ring size in {256, 512, 1024, 2048} MTU packets. Paper
// results: growing PTcache-L3 misses (larger IOVA working set), roughly
// constant IOTLB misses, up to ~15 additional percentage points of
// throughput degradation at 2048.
#include <iostream>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  Table table(bench::IperfHeaders("ring"));
  for (ProtectionMode mode : {ProtectionMode::kOff, ProtectionMode::kStrict}) {
    for (std::uint32_t ring : {256u, 512u, 1024u, 2048u}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 5;
      config.ring_size_pkts = ring;
      const auto run = bench::RunIperf(config, 5);
      bench::AddIperfRow(&table, ProtectionModeName(mode), std::to_string(ring), run);
    }
  }
  std::cout << "Figure 3: memory protection overheads vs ring buffer size\n"
               "(iperf, 5 flows, 4KB MTU; paper: L3 misses grow with the working set)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
