// Sensitivity of the headline result to the simulator's own design choices
// (the ablation-worthy decisions documented in DESIGN.md §5b): walker
// parallelism, DDIO commit rate, RC buffer depth, leaf-PTE read cost, and
// PTcache presence. For each variant we report strict and F&S iperf
// throughput at 5 flows — the headline gap should be robust, and the table
// shows which knobs it actually depends on.
#include <functional>
#include <string>
#include <vector>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;

  struct Variant {
    std::string name;
    std::function<void(TestbedConfig*)> apply;
  };
  std::vector<Variant> variants = {
      {"baseline", [](TestbedConfig*) {}},
      {"walkers=2",
       [](TestbedConfig* c) { c->host.iommu.num_walkers = 2; }},
      {"walkers=4",
       [](TestbedConfig* c) { c->host.iommu.num_walkers = 4; }},
      {"ddio-on (commit 32B/ns)",
       [](TestbedConfig* c) { c->host.pcie.commit_bytes_per_ns = 32.0; }},
      {"rc-buffer 64 lines",
       [](TestbedConfig* c) { c->host.pcie.rc_buffer_bytes = 4096; }},
      {"rc-buffer 200 lines",
       [](TestbedConfig* c) { c->host.pcie.rc_buffer_bytes = 12800; }},
      {"leaf-read = DRAM cost",
       [](TestbedConfig* c) { c->host.iommu.leaf_pte_read_ns = 280; }},
      {"no PTcaches (pre-2010 IOMMU)",
       [](TestbedConfig* c) { c->host.iommu.ptcache_enabled = false; }},
      {"small IOTLB (16 entries)",
       [](TestbedConfig* c) {
         c->host.iommu.iotlb_sets = 4;
         c->host.iommu.iotlb_ways = 4;
       }},
      {"no descriptor-fetch DMA",
       [](TestbedConfig* c) { c->host.nic.model_descriptor_fetch = false; }},
      {"no IOVA free migration",
       [](TestbedConfig* c) { c->host.dma.free_migration_fraction = 0.0; }},
  };
  if (bench::SmokeMode()) {
    variants.resize(1);
  }

  // Each (variant, mode) pair is an independent sweep point.
  struct Cell {
    double gbps = 0;
    double reads = 0;
  };
  const ProtectionMode modes[] = {ProtectionMode::kStrict, ProtectionMode::kFastSafe};
  const auto cells = bench::ParallelSweep<Cell>(variants.size() * 2, [&](std::size_t i) {
    TestbedConfig config;
    config.mode = modes[i % 2];
    config.cores = 5;
    variants[i / 2].apply(&config);
    const auto run = bench::RunIperf(config, 5);
    return Cell{run.window.goodput_gbps, run.window.mem_reads_per_page};
  });

  Table table({"variant", "strict_gbps", "fs_gbps", "strict_reads/pg", "fs_reads/pg"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    table.BeginRow();
    table.AddCell(variants[v].name);
    table.AddNumber(cells[v * 2].gbps, 1);
    table.AddNumber(cells[v * 2 + 1].gbps, 1);
    table.AddNumber(cells[v * 2].reads, 2);
    table.AddNumber(cells[v * 2 + 1].reads, 2);
  }
  bench::EmitFigure(
      "Model ablation: strict vs F&S (iperf, 5 flows) under simulator variants\n\n",
      table);
  return 0;
}
