// Figure 11c: SPDK remote-storage read throughput vs block size.
//
// Client threads on the measured host read 32-256 KB blocks with IO depth 8
// from a storage server. Paper results: strict caps near ~60 Gbps; F&S
// matches IOMMU-off except a small gap at 32 KB (request-packet IOTLB
// contention).
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/spdk.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint64_t block_kb;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint64_t block_kb : bench::Sweep({32ull, 64ull, 128ull, 256ull})) {
      points.push_back(Point{mode, block_kb});
    }
  }

  const auto runs = bench::ParallelSweep<bench::AppsRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 8;
    config.mtu_bytes = 9000;
    // SPDK config puts the measured client on host 1.
    return bench::RunApps(config, SpdkReadConfig(points[i].block_kb * 1024), 8);
  });

  Table table({"mode", "block_kb", "gbps", "kiops"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddInteger(static_cast<long long>(points[i].block_kb));
    table.AddNumber(runs[i].response_gbps, 1);
    table.AddNumber(runs[i].ops_per_s / 1000.0, 1);
  }
  bench::EmitFigure(
      "Figure 11c: SPDK read throughput vs block size (IO depth 8)\n"
      "(expected: strict <= ~60 Gbps; F&S ~ off, small gap at 32 KB)\n\n",
      table);
  return 0;
}
