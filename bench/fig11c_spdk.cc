// Figure 11c: SPDK remote-storage read throughput vs block size.
//
// Client threads on the measured host read 32-256 KB blocks with IO depth 8
// from a storage server. Paper results: strict caps near ~60 Gbps; F&S
// matches IOMMU-off except a small gap at 32 KB (request-packet IOTLB
// contention).
#include <iostream>
#include <string>

#include "bench/figure_common.h"
#include "src/apps/spdk.h"

int main() {
  using namespace fsio;
  Table table({"mode", "block_kb", "gbps", "kiops"});

  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint64_t block_kb : {32ull, 64ull, 128ull, 256ull}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 8;
      config.mtu_bytes = 9000;
      Testbed testbed(config);
      // SPDK config puts the measured client on host 1.
      auto apps = MakeApps(&testbed, SpdkReadConfig(block_kb * 1024), 8, config.cores);
      for (auto& app : apps) {
        app->Start();
      }
      testbed.RunUntil(bench::kWarmupNs);
      std::uint64_t bytes0 = 0;
      std::uint64_t ops0 = 0;
      for (auto& app : apps) {
        bytes0 += app->response_bytes_delivered();
        ops0 += app->completed();
      }
      testbed.RunUntil(testbed.ev().now() + bench::kWindowNs);
      std::uint64_t bytes1 = 0;
      std::uint64_t ops1 = 0;
      for (auto& app : apps) {
        bytes1 += app->response_bytes_delivered();
        ops1 += app->completed();
      }
      table.BeginRow();
      table.AddCell(ProtectionModeName(mode));
      table.AddInteger(static_cast<long long>(block_kb));
      table.AddNumber(static_cast<double>(bytes1 - bytes0) * 8.0 /
                          static_cast<double>(bench::kWindowNs),
                      1);
      table.AddNumber(static_cast<double>(ops1 - ops0) /
                          (static_cast<double>(bench::kWindowNs) / 1e9) / 1000.0,
                      1);
    }
  }
  std::cout << "Figure 11c: SPDK read throughput vs block size (IO depth 8)\n"
               "(expected: strict <= ~60 Gbps; F&S ~ off, small gap at 32 KB)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
