// Figure 11b: Nginx web-serving throughput vs page size.
//
// wrk-style clients fetch 128 KB - 2 MB pages from a server running one
// instance per core. Paper results: IOMMU-off tops out near 90 Gbps
// (application overhead); strict loses 65-70% across all page sizes; F&S
// fully recovers the IOMMU-off throughput.
#include <iostream>
#include <string>

#include "bench/figure_common.h"
#include "src/apps/nginx.h"

int main() {
  using namespace fsio;
  Table table({"mode", "page_kb", "gbps", "pages/s"});

  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint64_t page_kb : {128ull, 256ull, 512ull, 1024ull, 2048ull}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 8;
      config.mtu_bytes = 9000;
      Testbed testbed(config);
      // Server on host 1 (the measured host, transmitting pages), clients on
      // host 0: NginxGetConfig defaults have the server on host 1.
      auto apps = MakeApps(&testbed, NginxGetConfig(page_kb * 1024), 8, config.cores);
      for (auto& app : apps) {
        app->Start();
      }
      testbed.RunUntil(bench::kWarmupNs);
      std::uint64_t bytes0 = 0;
      std::uint64_t ops0 = 0;
      for (auto& app : apps) {
        bytes0 += app->response_bytes_delivered();
        ops0 += app->completed();
      }
      testbed.RunUntil(testbed.ev().now() + bench::kWindowNs);
      std::uint64_t bytes1 = 0;
      std::uint64_t ops1 = 0;
      for (auto& app : apps) {
        bytes1 += app->response_bytes_delivered();
        ops1 += app->completed();
      }
      table.BeginRow();
      table.AddCell(ProtectionModeName(mode));
      table.AddInteger(static_cast<long long>(page_kb));
      table.AddNumber(static_cast<double>(bytes1 - bytes0) * 8.0 /
                          static_cast<double>(bench::kWindowNs),
                      1);
      table.AddNumber(static_cast<double>(ops1 - ops0) /
                          (static_cast<double>(bench::kWindowNs) / 1e9),
                      0);
    }
  }
  std::cout << "Figure 11b: Nginx throughput vs web page size\n"
               "(expected: off ~ 90 Gbps app-limited; strict -65..70%; F&S ~ off)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
