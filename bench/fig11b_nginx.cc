// Figure 11b: Nginx web-serving throughput vs page size.
//
// wrk-style clients fetch 128 KB - 2 MB pages from a server running one
// instance per core. Paper results: IOMMU-off tops out near 90 Gbps
// (application overhead); strict loses 65-70% across all page sizes; F&S
// fully recovers the IOMMU-off throughput.
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/nginx.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint64_t page_kb;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint64_t page_kb : bench::Sweep({128ull, 256ull, 512ull, 1024ull, 2048ull})) {
      points.push_back(Point{mode, page_kb});
    }
  }

  const auto runs = bench::ParallelSweep<bench::AppsRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 8;
    config.mtu_bytes = 9000;
    // Server on host 1 (the measured host, transmitting pages), clients on
    // host 0: NginxGetConfig defaults have the server on host 1.
    return bench::RunApps(config, NginxGetConfig(points[i].page_kb * 1024), 8);
  });

  Table table({"mode", "page_kb", "gbps", "pages/s"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddInteger(static_cast<long long>(points[i].page_kb));
    table.AddNumber(runs[i].response_gbps, 1);
    table.AddNumber(runs[i].ops_per_s, 0);
  }
  bench::EmitFigure(
      "Figure 11b: Nginx throughput vs web page size\n"
      "(expected: off ~ 90 Gbps app-limited; strict -65..70%; F&S ~ off)\n\n",
      table);
  return 0;
}
