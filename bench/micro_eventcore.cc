// Microbenchmarks (google-benchmark) for the rearchitected event core
// (DESIGN.md §11): schedule/dispatch throughput of the calendar queue and
// arena against the reference binary-heap scheduler, plus the specific
// shapes the datapath generates — same-timestamp bursts (NIC commit chains),
// short-horizon timer wheels (per-packet stack work), and far-future
// overflow churn (measurement-window boundaries). Run by the CI perf-smoke
// job; compare against ReferenceEventQueue locally with --benchmark_filter.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/simcore/event_queue.h"
#include "src/simcore/reference_event_queue.h"
#include "src/simcore/rng.h"

namespace fsio {
namespace {

// Hot-path shape: every executed event schedules a successor a short,
// varying distance ahead (packet service chains). Measures the full
// insert + pop + dispatch cycle with a steady pending population.
template <typename Queue>
void ScheduleDispatchChain(benchmark::State& state) {
  Queue q;
  q.Reserve(8192);
  const std::int64_t population = state.range(0);
  std::uint64_t executed = 0;
  Rng rng(1);
  struct Chain {
    Queue* q;
    std::uint64_t* executed;
    Rng* rng;
    void Fire() {
      ++*executed;
      q->ScheduleAfter(1 + rng->NextBelow(900), [this] { Fire(); });
    }
  } chain{&q, &executed, &rng};
  for (std::int64_t i = 0; i < population; ++i) {
    q.ScheduleAfter(1 + rng.NextBelow(900), [&chain] { chain.Fire(); });
  }
  for (auto _ : state) {
    const std::uint64_t target = executed + 1024;
    while (executed < target) {
      q.RunUntil(q.now() + 512);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
void BM_EventCore_Chain(benchmark::State& s) { ScheduleDispatchChain<EventQueue>(s); }
void BM_RefHeap_Chain(benchmark::State& s) {
  ScheduleDispatchChain<ReferenceEventQueue>(s);
}
BENCHMARK(BM_EventCore_Chain)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_RefHeap_Chain)->Arg(64)->Arg(1024)->Arg(16384);

// Same-timestamp FIFO bursts: N events at one instant, each of which the
// dispatcher must retire in insertion order (NIC commit + per-core NAPI
// scheduling produce exactly this shape).
template <typename Queue>
void SameTimestampBurst(benchmark::State& state) {
  Queue q;
  q.Reserve(8192);
  const std::int64_t burst = state.range(0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const TimeNs when = q.now() + 64;
    for (std::int64_t i = 0; i < burst; ++i) {
      q.ScheduleAt(when, [&sink] { ++sink; });
    }
    q.RunUntil(when);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * burst);
}
void BM_EventCore_Burst(benchmark::State& s) { SameTimestampBurst<EventQueue>(s); }
void BM_RefHeap_Burst(benchmark::State& s) {
  SameTimestampBurst<ReferenceEventQueue>(s);
}
BENCHMARK(BM_EventCore_Burst)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_RefHeap_Burst)->Arg(16)->Arg(256)->Arg(4096);

// Overflow-tier churn: a mix of near-future work and events far beyond the
// calendar window (measurement-window edges, retransmit timers), forcing
// window slides and overflow promotion.
template <typename Queue>
void OverflowChurn(benchmark::State& state) {
  Queue q;
  q.Reserve(8192);
  Rng rng(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      if (rng.NextBool(0.125)) {
        q.ScheduleAfter(1'000'000 + rng.NextBelow(50'000'000),
                        [&sink] { ++sink; });
      } else {
        q.ScheduleAfter(rng.NextBelow(4096), [&sink] { ++sink; });
      }
    }
    q.RunUntil(q.now() + 8192);
  }
  q.RunAll();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(sink));
}
void BM_EventCore_Overflow(benchmark::State& s) { OverflowChurn<EventQueue>(s); }
void BM_RefHeap_Overflow(benchmark::State& s) {
  OverflowChurn<ReferenceEventQueue>(s);
}
BENCHMARK(BM_EventCore_Overflow);
BENCHMARK(BM_RefHeap_Overflow);

// Allocation behaviour: the arena path must stay allocation-free in steady
// state; this variant reports observed scheduler allocations per iteration
// as a counter (expected: 0 after warm-up for EventQueue).
void BM_EventCore_SteadyStateAllocs(benchmark::State& state) {
  EventQueue q;
  q.Reserve(4096);
  std::uint64_t sink = 0;
  // Warm-up: populate the arena high-water mark.
  for (int i = 0; i < 2048; ++i) {
    q.ScheduleAfter(1 + (i % 512), [&sink] { ++sink; });
  }
  q.RunAll();
  const std::uint64_t before = q.allocations();
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      q.ScheduleAfter(1 + (i % 512), [&sink] { ++sink; });
    }
    q.RunAll();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs"] = static_cast<double>(q.allocations() - before);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventCore_SteadyStateAllocs);

}  // namespace
}  // namespace fsio

BENCHMARK_MAIN();
