// Figure 2 (a-e): modern memory protection overheads vs number of flows.
//
// iperf, 4 KB MTU, ring 256, 5 cores; flows in {5, 10, 20, 40}; IOMMU off vs
// Linux strict. Paper results: 20-65% throughput loss, up to 4% drops,
// 1.30-2.20 IOTLB misses/page, PTcache misses growing with flows, and
// degrading PTcache-L3 locality.
#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  bench::RunIperfFigure<std::uint32_t>(
      "Figure 2: memory protection overheads vs number of flows\n"
      "(iperf, 4KB MTU, ring 256, 5 cores; paper: 80->35 Gbps for strict)\n\n",
      "flows", bench::WithCapability({ProtectionMode::kOff, ProtectionMode::kStrict}),
      bench::Sweep({5u, 10u, 20u, 40u}), /*flows_or_zero=*/0,
      [](TestbedConfig* config, std::uint32_t flows, std::uint32_t* out_flows) {
        config->cores = 5;
        *out_flows = flows;
      });
  return 0;
}
