// Figure 2 (a-e): modern memory protection overheads vs number of flows.
//
// iperf, 4 KB MTU, ring 256, 5 cores; flows in {5, 10, 20, 40}; IOMMU off vs
// Linux strict. Paper results: 20-65% throughput loss, up to 4% drops,
// 1.30-2.20 IOTLB misses/page, PTcache misses growing with flows, and
// degrading PTcache-L3 locality.
#include <iostream>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  Table table(bench::IperfHeaders("flows"));
  for (ProtectionMode mode : {ProtectionMode::kOff, ProtectionMode::kStrict}) {
    for (std::uint32_t flows : {5u, 10u, 20u, 40u}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 5;
      const auto run = bench::RunIperf(config, flows);
      bench::AddIperfRow(&table, ProtectionModeName(mode), std::to_string(flows), run);
    }
  }
  std::cout << "Figure 2: memory protection overheads vs number of flows\n"
               "(iperf, 4KB MTU, ring 256, 5 cores; paper: 80->35 Gbps for strict)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
