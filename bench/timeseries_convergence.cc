// Time-series view of the experiment transient: per-millisecond goodput and
// drop counts for each protection mode from a cold start. Shows DCTCP
// convergence, the strict-mode drop/backoff cycles, and that F&S reaches the
// IOMMU-off steady state within a few milliseconds — useful when choosing
// warmup windows and when eyeballing stability of the figure benches.
//
// Each mode's series must run inside one simulation, so the sweep points are
// the modes themselves; the per-millisecond samples stay sequential within a
// point.
#include <string>
#include <vector>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;

  const std::vector<ProtectionMode> modes = bench::WithCapability(
      {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe});
  const int total_ms = bench::SmokeMode() ? 6 : 30;

  struct Sample {
    int ms = 0;
    double gbps = 0;
    long long drops = 0;
    double reads = 0;
  };
  const auto series =
      bench::ParallelSweep<std::vector<Sample>>(modes.size(), [&](std::size_t i) {
        TestbedConfig config;
        config.mode = modes[i];
        config.cores = 5;
        Testbed testbed(config);
        StartIperf(&testbed, 10);
        std::vector<Sample> out;
        for (int ms = 1; ms <= total_ms; ++ms) {
          const WindowResult r = testbed.MeasureWindow(1, 1 * kNsPerMs);
          if (ms % 2 != 0) {
            continue;  // print every other millisecond
          }
          const std::uint64_t drops = r.raw_rx_host.count("nic.drops_buffer")
                                          ? r.raw_rx_host.at("nic.drops_buffer") +
                                                r.raw_rx_host.at("nic.drops_nodesc")
                                          : 0;
          out.push_back(Sample{ms, r.goodput_gbps, static_cast<long long>(drops),
                               r.mem_reads_per_page});
        }
        return out;
      });

  Table table({"mode", "ms", "gbps", "drops", "reads/pg"});
  for (std::size_t i = 0; i < modes.size(); ++i) {
    for (const Sample& s : series[i]) {
      table.BeginRow();
      table.AddCell(ProtectionModeName(modes[i]));
      table.AddInteger(s.ms);
      table.AddNumber(s.gbps, 1);
      table.AddInteger(s.drops);
      table.AddNumber(s.reads, 2);
    }
  }
  bench::EmitFigure(
      "Convergence time series (iperf, 10 flows, cold start, 1 ms samples)\n\n", table);
  return 0;
}
