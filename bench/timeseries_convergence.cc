// Time-series view of the experiment transient: per-millisecond goodput and
// drop counts for each protection mode from a cold start. Shows DCTCP
// convergence, the strict-mode drop/backoff cycles, and that F&S reaches the
// IOMMU-off steady state within a few milliseconds — useful when choosing
// warmup windows and when eyeballing stability of the figure benches.
#include <iostream>
#include <string>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  Table table({"mode", "ms", "gbps", "drops", "reads/pg"});
  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    TestbedConfig config;
    config.mode = mode;
    config.cores = 5;
    Testbed testbed(config);
    StartIperf(&testbed, 10);
    for (int ms = 1; ms <= 30; ++ms) {
      const WindowResult r = testbed.MeasureWindow(1, 1 * kNsPerMs);
      if (ms % 2 != 0) {
        continue;  // print every other millisecond
      }
      const std::uint64_t drops = r.raw_rx_host.count("nic.drops_buffer")
                                      ? r.raw_rx_host.at("nic.drops_buffer") +
                                            r.raw_rx_host.at("nic.drops_nodesc")
                                      : 0;
      table.BeginRow();
      table.AddCell(ProtectionModeName(mode));
      table.AddInteger(ms);
      table.AddNumber(r.goodput_gbps, 1);
      table.AddInteger(static_cast<long long>(drops));
      table.AddNumber(r.mem_reads_per_page, 2);
    }
  }
  std::cout << "Convergence time series (iperf, 10 flows, cold start, 1 ms samples)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
