// Figure 12: contribution of each F&S design idea (ablation).
//
// Redis SET at 8 KB values, four configurations:
//   (i)   default Linux strict
//   (ii)  Linux + A: preserve IO page table caches on unmap
//   (iii) Linux + B: contiguous IOVA allocation + batched invalidations
//   (iv)  Linux + F&S (all three ideas)
// Paper result: A alone and B alone each leave large PTcache miss rates;
// only the combination reaches full throughput.
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/redis.h"

int main() {
  using namespace fsio;

  const std::vector<ProtectionMode> configs = bench::WithCapability(
      bench::Sweep({ProtectionMode::kStrict, ProtectionMode::kStrictPreserve,
                    ProtectionMode::kStrictContig, ProtectionMode::kFastSafe,
                    ProtectionMode::kOff}));
  const auto runs = bench::ParallelSweep<bench::AppsRun>(configs.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = configs[i];
    config.cores = 8;
    config.mtu_bytes = 9000;
    return bench::RunApps(config, RedisSetConfig(8 * 1024), 8);
  });

  Table table({"config", "set_gbps", "iotlb/pg", "l1/pg", "l2/pg", "l3/pg", "reads/pg"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(configs[i]));
    table.AddNumber(runs[i].request_gbps, 1);
    table.AddNumber(runs[i].window.iotlb_miss_per_page, 2);
    table.AddNumber(runs[i].window.l1_miss_per_page, 3);
    table.AddNumber(runs[i].window.l2_miss_per_page, 3);
    table.AddNumber(runs[i].window.l3_miss_per_page, 3);
    table.AddNumber(runs[i].window.mem_reads_per_page, 2);
  }
  bench::EmitFigure(
      "Figure 12: necessity of each F&S idea (Redis SET, 8 KB values)\n"
      "(expected: strict < strict+A, strict+B < fast-and-safe ~ off)\n\n",
      table);
  return 0;
}
