// Figure 12: contribution of each F&S design idea (ablation).
//
// Redis SET at 8 KB values, four configurations:
//   (i)   default Linux strict
//   (ii)  Linux + A: preserve IO page table caches on unmap
//   (iii) Linux + B: contiguous IOVA allocation + batched invalidations
//   (iv)  Linux + F&S (all three ideas)
// Paper result: A alone and B alone each leave large PTcache miss rates;
// only the combination reaches full throughput.
#include <iostream>

#include "bench/figure_common.h"
#include "src/apps/redis.h"

int main() {
  using namespace fsio;
  Table table({"config", "set_gbps", "iotlb/pg", "l1/pg", "l2/pg", "l3/pg", "reads/pg"});

  const ProtectionMode configs[] = {ProtectionMode::kStrict, ProtectionMode::kStrictPreserve,
                                    ProtectionMode::kStrictContig, ProtectionMode::kFastSafe,
                                    ProtectionMode::kOff};
  for (ProtectionMode mode : configs) {
    TestbedConfig config;
    config.mode = mode;
    config.cores = 8;
    config.mtu_bytes = 9000;
    Testbed testbed(config);
    auto apps = MakeApps(&testbed, RedisSetConfig(8 * 1024), 8, config.cores);
    for (auto& app : apps) {
      app->Start();
    }
    testbed.RunUntil(bench::kWarmupNs);
    std::uint64_t bytes0 = 0;
    for (auto& app : apps) {
      bytes0 += app->request_bytes_delivered();
    }
    const auto window = testbed.MeasureWindow(1, bench::kWindowNs);
    std::uint64_t bytes1 = 0;
    for (auto& app : apps) {
      bytes1 += app->request_bytes_delivered();
    }
    table.BeginRow();
    table.AddCell(ProtectionModeName(mode));
    table.AddNumber(static_cast<double>(bytes1 - bytes0) * 8.0 /
                        static_cast<double>(bench::kWindowNs),
                    1);
    table.AddNumber(window.iotlb_miss_per_page, 2);
    table.AddNumber(window.l1_miss_per_page, 3);
    table.AddNumber(window.l2_miss_per_page, 3);
    table.AddNumber(window.l3_miss_per_page, 3);
    table.AddNumber(window.mem_reads_per_page, 2);
  }
  std::cout << "Figure 12: necessity of each F&S idea (Redis SET, 8 KB values)\n"
               "(expected: strict < strict+A, strict+B < fast-and-safe ~ off)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
