// Figure 7 (a-e): F&S vs Linux strict vs IOMMU-off, sweeping flow count.
//
// Paper results: F&S matches IOMMU-off throughput at every flow count,
// eliminates drops, halves IOTLB misses at 40 flows (fewer ACKs), brings
// PTcache-L1/L2 misses to zero and PTcache-L3 misses below 0.045/page, and
// keeps IOVA locality flat.
#include <iostream>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  Table table(bench::IperfHeaders("flows"));
  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint32_t flows : {5u, 10u, 20u, 40u}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 5;
      const auto run = bench::RunIperf(config, flows);
      bench::AddIperfRow(&table, ProtectionModeName(mode), std::to_string(flows), run);
    }
  }
  std::cout << "Figure 7: F&S near-completely eliminates protection overheads vs flows\n"
               "(expected: fast-and-safe == iommu-off, l1/l2/l3 misses ~ 0)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
