// Figure 7 (a-e): F&S vs Linux strict vs IOMMU-off, sweeping flow count.
//
// Paper results: F&S matches IOMMU-off throughput at every flow count,
// eliminates drops, halves IOTLB misses at 40 flows (fewer ACKs), brings
// PTcache-L1/L2 misses to zero and PTcache-L3 misses below 0.045/page, and
// keeps IOVA locality flat.
#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  bench::RunIperfFigure<std::uint32_t>(
      "Figure 7: F&S near-completely eliminates protection overheads vs flows\n"
      "(expected: fast-and-safe == iommu-off, l1/l2/l3 misses ~ 0)\n\n",
      "flows",
      bench::WithCapability(
          {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}),
      bench::Sweep({5u, 10u, 20u, 40u}), /*flows_or_zero=*/0,
      [](TestbedConfig* config, std::uint32_t flows, std::uint32_t* out_flows) {
        config->cores = 5;
        *out_flows = flows;
      });
  return 0;
}
