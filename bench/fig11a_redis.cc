// Figure 11a: Redis SET throughput vs value size under each protection mode.
//
// 8 cores, 9 KB MTU, pipeline 32, value sizes 4-128 KB. Paper results:
// strict loses 38-70% (worse at small values, where per-request replies
// inflate IOTLB contention); F&S matches IOMMU-off except a small gap at
// 4 KB values.
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/redis.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint64_t value_kb;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint64_t value_kb : bench::Sweep({4ull, 8ull, 16ull, 32ull, 64ull, 128ull})) {
      points.push_back(Point{mode, value_kb});
    }
  }

  const auto runs = bench::ParallelSweep<bench::AppsRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 8;
    config.mtu_bytes = 9000;
    return bench::RunApps(config, RedisSetConfig(points[i].value_kb * 1024), 8);
  });

  Table table({"mode", "value_kb", "set_gbps", "kops/s", "iotlb/pg", "reads/pg"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddInteger(static_cast<long long>(points[i].value_kb));
    table.AddNumber(runs[i].request_gbps, 1);
    table.AddNumber(runs[i].ops_per_s / 1000.0, 1);
    table.AddNumber(runs[i].window.iotlb_miss_per_page, 2);
    table.AddNumber(runs[i].window.mem_reads_per_page, 2);
  }
  bench::EmitFigure(
      "Figure 11a: Redis 100% SET throughput vs value size\n"
      "(expected: strict -38..70%, worst at small values; F&S ~ off)\n\n",
      table);
  return 0;
}
