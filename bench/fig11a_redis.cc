// Figure 11a: Redis SET throughput vs value size under each protection mode.
//
// 8 cores, 9 KB MTU, pipeline 32, value sizes 4-128 KB. Paper results:
// strict loses 38-70% (worse at small values, where per-request replies
// inflate IOTLB contention); F&S matches IOMMU-off except a small gap at
// 4 KB values.
#include <iostream>
#include <string>

#include "bench/figure_common.h"
#include "src/apps/redis.h"

int main() {
  using namespace fsio;
  Table table({"mode", "value_kb", "set_gbps", "kops/s", "iotlb/pg", "reads/pg"});

  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint64_t value_kb : {4ull, 8ull, 16ull, 32ull, 64ull, 128ull}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 8;
      config.mtu_bytes = 9000;
      Testbed testbed(config);
      auto apps = MakeApps(&testbed, RedisSetConfig(value_kb * 1024), 8, config.cores);
      for (auto& app : apps) {
        app->Start();
      }
      testbed.RunUntil(bench::kWarmupNs);
      std::uint64_t bytes0 = 0;
      std::uint64_t ops0 = 0;
      for (auto& app : apps) {
        bytes0 += app->request_bytes_delivered();
        ops0 += app->completed();
      }
      const auto window = testbed.MeasureWindow(1, bench::kWindowNs);
      std::uint64_t bytes1 = 0;
      std::uint64_t ops1 = 0;
      for (auto& app : apps) {
        bytes1 += app->request_bytes_delivered();
        ops1 += app->completed();
      }
      table.BeginRow();
      table.AddCell(ProtectionModeName(mode));
      table.AddInteger(static_cast<long long>(value_kb));
      table.AddNumber(static_cast<double>(bytes1 - bytes0) * 8.0 /
                          static_cast<double>(bench::kWindowNs),
                      1);
      table.AddNumber(static_cast<double>(ops1 - ops0) /
                          (static_cast<double>(bench::kWindowNs) / 1e9) / 1000.0,
                      1);
      table.AddNumber(window.iotlb_miss_per_page, 2);
      table.AddNumber(window.mem_reads_per_page, 2);
    }
  }
  std::cout << "Figure 11a: Redis 100% SET throughput vs value size\n"
               "(expected: strict -38..70%, worst at small values; F&S ~ off)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
