// Figure 9: tail latency of a latency-sensitive RPC application colocated
// with throughput-bound iperf flows.
//
// netperf-style RPCs of 128 B - 32 KB on a dedicated core, next to 5 iperf
// flows. Paper results: strict mode inflates P99/P99.9 by orders of
// magnitude (NIC queue buildup + retransmission timeouts); F&S stays within
// 1.17x of IOMMU-off (1.42x at P99.99).
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/rpc.h"
#include "src/stats/histogram.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint64_t size;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint64_t size : bench::Sweep({128ull, 1024ull, 4096ull, 16384ull, 32768ull})) {
      points.push_back(Point{mode, size});
    }
  }

  const TimeNs rpc_warmup = bench::SmokeMode() ? 3 * kNsPerMs : 15 * kNsPerMs;
  const TimeNs rpc_window = bench::SmokeMode() ? 5 * kNsPerMs : 80 * kNsPerMs;

  const auto merged = bench::ParallelSweep<Histogram>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 6;  // 5 iperf + 1 RPC core
    Testbed testbed(config);
    StartIperf(&testbed, 5);
    std::vector<std::unique_ptr<RequestResponseApp>> rpcs;
    for (int r = 0; r < 4; ++r) {
      rpcs.push_back(std::make_unique<RequestResponseApp>(
          &testbed, NetperfRpcConfig(points[i].size, /*rpc_core=*/5)));
    }
    for (auto& rpc : rpcs) {
      rpc->Start();
    }
    testbed.RunUntil(rpc_warmup);
    for (auto& rpc : rpcs) {
      rpc->mutable_latency().Reset();
    }
    testbed.RunUntil(testbed.ev().now() + rpc_window);

    Histogram out;
    for (auto& rpc : rpcs) {
      out.Merge(rpc->latency());
    }
    return out;
  });

  Table table({"mode", "rpc_bytes", "rpcs", "p50_us", "p90_us", "p99_us", "p99.9_us"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddInteger(static_cast<long long>(points[i].size));
    table.AddInteger(static_cast<long long>(merged[i].count()));
    table.AddNumber(static_cast<double>(merged[i].Percentile(50)) / 1000.0, 1);
    table.AddNumber(static_cast<double>(merged[i].Percentile(90)) / 1000.0, 1);
    table.AddNumber(static_cast<double>(merged[i].Percentile(99)) / 1000.0, 1);
    table.AddNumber(static_cast<double>(merged[i].Percentile(99.9)) / 1000.0, 1);
  }
  bench::EmitFigure(
      "Figure 9: RPC tail latency colocated with iperf\n"
      "(expected: strict inflates tails; fast-and-safe ~ iommu-off)\n\n",
      table);
  return 0;
}
