// Figure 9: tail latency of a latency-sensitive RPC application colocated
// with throughput-bound iperf flows.
//
// netperf-style RPCs of 128 B - 32 KB on a dedicated core, next to 5 iperf
// flows. Paper results: strict mode inflates P99/P99.9 by orders of
// magnitude (NIC queue buildup + retransmission timeouts); F&S stays within
// 1.17x of IOMMU-off (1.42x at P99.99).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/rpc.h"
#include "src/stats/histogram.h"

int main() {
  using namespace fsio;
  Table table({"mode", "rpc_bytes", "rpcs", "p50_us", "p90_us", "p99_us", "p99.9_us"});

  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint64_t size : {128ull, 1024ull, 4096ull, 16384ull, 32768ull}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 6;  // 5 iperf + 1 RPC core
      Testbed testbed(config);
      StartIperf(&testbed, 5);
      std::vector<std::unique_ptr<RequestResponseApp>> rpcs;
      for (int i = 0; i < 4; ++i) {
        rpcs.push_back(std::make_unique<RequestResponseApp>(
            &testbed, NetperfRpcConfig(size, /*rpc_core=*/5)));
      }
      for (auto& rpc : rpcs) {
        rpc->Start();
      }
      testbed.RunUntil(15 * kNsPerMs);
      for (auto& rpc : rpcs) {
        rpc->mutable_latency().Reset();
      }
      testbed.RunUntil(testbed.ev().now() + 80 * kNsPerMs);

      Histogram merged;
      for (auto& rpc : rpcs) {
        merged.Merge(rpc->latency());
      }
      table.BeginRow();
      table.AddCell(ProtectionModeName(mode));
      table.AddInteger(static_cast<long long>(size));
      table.AddInteger(static_cast<long long>(merged.count()));
      table.AddNumber(static_cast<double>(merged.Percentile(50)) / 1000.0, 1);
      table.AddNumber(static_cast<double>(merged.Percentile(90)) / 1000.0, 1);
      table.AddNumber(static_cast<double>(merged.Percentile(99)) / 1000.0, 1);
      table.AddNumber(static_cast<double>(merged.Percentile(99.9)) / 1000.0, 1);
    }
  }
  std::cout << "Figure 9: RPC tail latency colocated with iperf\n"
               "(expected: strict inflates tails; fast-and-safe ~ iommu-off)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
