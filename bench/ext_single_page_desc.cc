// Extension experiment (paper §3 "Generality of F&S techniques"):
// single-page descriptors (Intel ICE-style NICs).
//
// The paper argues F&S's contiguous allocation and PTcache preservation
// apply directly to single-page descriptors, while batched invalidations
// lose their leverage (invalidations must stay at descriptor = page
// granularity), and leaves the evaluation to future work. This bench runs
// it: iperf at 5 flows with pages-per-descriptor in {1, 8, 64}.
#include <string>
#include <vector>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint32_t pages;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint32_t pages : bench::Sweep({1u, 8u, 64u})) {
      points.push_back(Point{mode, pages});
    }
  }

  const auto runs = bench::ParallelSweep<bench::IperfRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 5;
    config.host.pages_per_desc = points[i].pages;
    return bench::RunIperf(config, 5);
  });

  Table table({"mode", "pages/desc", "gbps", "iotlb/pg", "l3/pg", "reads/pg",
               "inv_req/pg"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& run = runs[i];
    const double inv =
        run.window.pages_of_data > 0
            ? static_cast<double>(run.window.raw_rx_host.at("dma.inv_requests")) /
                  static_cast<double>(run.window.pages_of_data)
            : 0.0;
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddCell(std::to_string(points[i].pages));
    table.AddNumber(run.window.goodput_gbps, 1);
    table.AddNumber(run.window.iotlb_miss_per_page, 2);
    table.AddNumber(run.window.l3_miss_per_page, 3);
    table.AddNumber(run.window.mem_reads_per_page, 2);
    table.AddNumber(inv, 2);
  }
  bench::EmitFigure(
      "Extension: F&S with single-page descriptors (paper leaves this to\n"
      "future work). Expected: preservation + contiguity still help; the\n"
      "batched-invalidation benefit shrinks as pages/descriptor -> 1.\n\n",
      table);
  return 0;
}
