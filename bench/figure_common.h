// Shared helpers for the figure-reproduction benches.
//
// Every fig*_ binary regenerates one of the paper's figures: it sweeps the
// figure's x-axis, runs the testbed for a warmup + measurement window, and
// prints the same series the paper plots (plus a CSV block for plotting).
#ifndef FASTSAFE_BENCH_FIGURE_COMMON_H_
#define FASTSAFE_BENCH_FIGURE_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/apps/iperf.h"
#include "src/core/testbed.h"
#include "src/stats/table.h"

namespace fsio {
namespace bench {

inline constexpr TimeNs kWarmupNs = 20 * kNsPerMs;
inline constexpr TimeNs kWindowNs = 40 * kNsPerMs;

// Locality summary of the Rx host's IOVA allocation trace (Figs 2e/3e/7e/8e).
struct LocalitySummary {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  double miss_fraction_64 = 0.0;
  double miss_fraction_128 = 0.0;
};

inline LocalitySummary SummarizeLocality(const ReuseDistanceTracker& tracker) {
  LocalitySummary out;
  std::vector<std::uint64_t> d = tracker.distances();
  if (d.empty()) {
    return out;
  }
  std::sort(d.begin(), d.end());
  out.p50 = d[d.size() / 2];
  out.p90 = d[d.size() * 9 / 10];
  out.p99 = d[d.size() * 99 / 100];
  out.miss_fraction_64 = tracker.MissFraction(64);
  out.miss_fraction_128 = tracker.MissFraction(128);
  return out;
}

// Runs an iperf workload and reports the receive-side window metrics.
struct IperfRun {
  WindowResult window;
  LocalitySummary locality;
};

inline IperfRun RunIperf(TestbedConfig config, std::uint32_t flows,
                         TimeNs warmup = kWarmupNs, TimeNs window = kWindowNs) {
  config.track_l3_locality = true;
  Testbed testbed(config);
  StartIperf(&testbed, flows);
  IperfRun run;
  run.window = testbed.RunWindow(warmup, window);
  run.locality = SummarizeLocality(testbed.receiver_host().l3_tracker());
  return run;
}

inline void AddIperfRow(Table* table, const std::string& mode, const std::string& x,
                        const IperfRun& run) {
  table->BeginRow();
  table->AddCell(mode);
  table->AddCell(x);
  table->AddNumber(run.window.goodput_gbps, 1);
  table->AddNumber(run.window.drop_rate * 100.0, 2);
  table->AddNumber(run.window.iotlb_miss_per_page, 2);
  table->AddNumber(run.window.l1_miss_per_page, 3);
  table->AddNumber(run.window.l2_miss_per_page, 3);
  table->AddNumber(run.window.l3_miss_per_page, 3);
  table->AddNumber(run.window.mem_reads_per_page, 2);
  table->AddNumber(run.window.tx_packets_per_page, 2);
  table->AddInteger(static_cast<long long>(run.locality.p50));
  table->AddInteger(static_cast<long long>(run.locality.p99));
}

inline std::vector<std::string> IperfHeaders(const std::string& x_name) {
  return {"mode",        x_name,       "gbps",        "drop_%",     "iotlb/pg", "l1/pg",
          "l2/pg",       "l3/pg",      "reads/pg",    "tx_pkt/pg",  "loc_p50",  "loc_p99"};
}

}  // namespace bench
}  // namespace fsio

#endif  // FASTSAFE_BENCH_FIGURE_COMMON_H_
