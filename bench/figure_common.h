// Shared helpers for the figure-reproduction benches.
//
// Every fig*_ binary regenerates one of the paper's figures: it sweeps the
// figure's x-axis, runs the testbed for a warmup + measurement window, and
// prints the same series the paper plots (plus a CSV block for plotting).
//
// Sweep points are independent deterministic simulations, so they run on the
// shared SweepRunner thread pool (src/core/sweep_runner.h): build the point
// list, ParallelSweep() the runs, then emit rows serially in point order —
// output is byte-identical to a serial sweep. FSIO_SWEEP_THREADS=1 forces
// serial execution; FSIO_BENCH_SMOKE=1 shrinks every sweep axis to its first
// value and the measurement windows to a CI-budget-friendly size.
#ifndef FASTSAFE_BENCH_FIGURE_COMMON_H_
#define FASTSAFE_BENCH_FIGURE_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "src/apps/iperf.h"
#include "src/apps/request_response.h"
#include "src/core/sweep_runner.h"
#include "src/core/testbed.h"
#include "src/stats/table.h"

namespace fsio {
namespace bench {

// CI smoke mode: one tiny sweep point per axis, short windows.
inline bool SmokeMode() { return std::getenv("FSIO_BENCH_SMOKE") != nullptr; }

inline constexpr TimeNs kWarmupNs = 20 * kNsPerMs;
inline constexpr TimeNs kWindowNs = 40 * kNsPerMs;

inline TimeNs WarmupNs() { return SmokeMode() ? 2 * kNsPerMs : kWarmupNs; }
inline TimeNs WindowNs() { return SmokeMode() ? 3 * kNsPerMs : kWindowNs; }

// Sweep-axis values; truncated to the first value in smoke mode.
template <typename T>
inline std::vector<T> Sweep(std::initializer_list<T> values) {
  std::vector<T> out(values);
  if (SmokeMode() && out.size() > 1) {
    out.resize(1);
  }
  return out;
}

// Appends the kernel-bypass capability mode to a figure's mode axis in full
// runs only. The CI smoke/golden baselines keep their original row set (the
// capability design has its own golden, bench/ext_capability), while every
// full figure run compares it head-to-head against the figure's IOMMU modes.
inline std::vector<ProtectionMode> WithCapability(std::vector<ProtectionMode> modes) {
  if (!SmokeMode()) {
    modes.push_back(ProtectionMode::kCapability);
  }
  return modes;
}

// Runs fn(i) for every sweep point on the shared thread pool and returns the
// results in point order. Result must be default-constructible.
template <typename Result, typename Fn>
inline std::vector<Result> ParallelSweep(std::size_t n, Fn&& fn) {
  return SweepRunner().Map<Result>(n, std::forward<Fn>(fn));
}

// One emission path for every bench: aligned table plus CSV block.
// FSIO_BENCH_CSV_ONLY=1 drops the human table — the golden-baseline
// comparator records bench output in this form so baseline diffs read as
// CSV diffs rather than column-alignment noise.
inline void EmitFigure(const std::string& title, const Table& table) {
  const bool csv_only = std::getenv("FSIO_BENCH_CSV_ONLY") != nullptr;
  EmitTable(std::cout, table, csv_only ? TableFormat::kCsv : TableFormat::kHumanWithCsv, title);
}

// Locality summary of the Rx host's IOVA allocation trace (Figs 2e/3e/7e/8e).
struct LocalitySummary {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  double miss_fraction_64 = 0.0;
  double miss_fraction_128 = 0.0;
};

inline LocalitySummary SummarizeLocality(const ReuseDistanceTracker& tracker) {
  LocalitySummary out;
  std::vector<std::uint64_t> d = tracker.distances();
  if (d.empty()) {
    return out;
  }
  std::sort(d.begin(), d.end());
  out.p50 = d[d.size() / 2];
  out.p90 = d[d.size() * 9 / 10];
  out.p99 = d[d.size() * 99 / 100];
  out.miss_fraction_64 = tracker.MissFraction(64);
  out.miss_fraction_128 = tracker.MissFraction(128);
  return out;
}

// Runs an iperf workload and reports the receive-side window metrics.
struct IperfRun {
  WindowResult window;
  LocalitySummary locality;
};

inline IperfRun RunIperf(TestbedConfig config, std::uint32_t flows,
                         TimeNs warmup = 0, TimeNs window = 0) {
  if (warmup == 0) {
    warmup = WarmupNs();
  }
  if (window == 0) {
    window = WindowNs();
  }
  config.track_l3_locality = true;
  Testbed testbed(config);
  StartIperf(&testbed, flows);
  IperfRun run;
  run.window = testbed.RunWindow(warmup, window);
  run.locality = SummarizeLocality(testbed.receiver_host().l3_tracker());
  return run;
}

inline void AddIperfRow(Table* table, const std::string& mode, const std::string& x,
                        const IperfRun& run) {
  table->BeginRow();
  table->AddCell(mode);
  table->AddCell(x);
  table->AddNumber(run.window.goodput_gbps, 1);
  table->AddNumber(run.window.drop_rate * 100.0, 2);
  table->AddNumber(run.window.iotlb_miss_per_page, 2);
  table->AddNumber(run.window.l1_miss_per_page, 3);
  table->AddNumber(run.window.l2_miss_per_page, 3);
  table->AddNumber(run.window.l3_miss_per_page, 3);
  table->AddNumber(run.window.mem_reads_per_page, 2);
  table->AddNumber(run.window.tx_packets_per_page, 2);
  table->AddInteger(static_cast<long long>(run.locality.p50));
  table->AddInteger(static_cast<long long>(run.locality.p99));
}

inline std::vector<std::string> IperfHeaders(const std::string& x_name) {
  return {"mode",        x_name,       "gbps",        "drop_%",     "iotlb/pg", "l1/pg",
          "l2/pg",       "l3/pg",      "reads/pg",    "tx_pkt/pg",  "loc_p50",  "loc_p99"};
}

// Runs a request/response application point (Redis/Nginx/SPDK/ablation) and
// reports application throughput plus the receive-window metrics.
struct AppsRun {
  double request_gbps = 0.0;   // request payload bytes delivered to the server
  double response_gbps = 0.0;  // response payload bytes delivered to clients
  double ops_per_s = 0.0;      // completed request/response round trips
  WindowResult window;         // measured on the server/measured host (host 1)
};

inline AppsRun RunApps(const TestbedConfig& config, const RequestResponseConfig& app_config,
                       std::uint32_t n) {
  Testbed testbed(config);
  auto apps = MakeApps(&testbed, app_config, n, config.cores);
  for (auto& app : apps) {
    app->Start();
  }
  testbed.RunUntil(WarmupNs());
  std::uint64_t request_bytes0 = 0;
  std::uint64_t response_bytes0 = 0;
  std::uint64_t ops0 = 0;
  for (auto& app : apps) {
    request_bytes0 += app->request_bytes_delivered();
    response_bytes0 += app->response_bytes_delivered();
    ops0 += app->completed();
  }
  AppsRun run;
  run.window = testbed.MeasureWindow(1, WindowNs());
  std::uint64_t request_bytes1 = 0;
  std::uint64_t response_bytes1 = 0;
  std::uint64_t ops1 = 0;
  for (auto& app : apps) {
    request_bytes1 += app->request_bytes_delivered();
    response_bytes1 += app->response_bytes_delivered();
    ops1 += app->completed();
  }
  const double window_ns = static_cast<double>(WindowNs());
  run.request_gbps = static_cast<double>(request_bytes1 - request_bytes0) * 8.0 / window_ns;
  run.response_gbps = static_cast<double>(response_bytes1 - response_bytes0) * 8.0 / window_ns;
  run.ops_per_s = static_cast<double>(ops1 - ops0) / (window_ns / 1e9);
  return run;
}

// The canonical mode-x-iperf sweep shared by Figs 2/3/7/8: runs every
// (mode, x) point in parallel and emits rows in the serial order.
template <typename X, typename MakeConfig>
inline void RunIperfFigure(const std::string& title, const std::string& x_name,
                           const std::vector<ProtectionMode>& modes,
                           const std::vector<X>& xs, std::uint32_t flows_or_zero,
                           MakeConfig make_config) {
  struct Point {
    ProtectionMode mode;
    X x;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : modes) {
    for (const X& x : xs) {
      points.push_back(Point{mode, x});
    }
  }
  const auto runs = ParallelSweep<IperfRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    std::uint32_t flows = flows_or_zero;
    make_config(&config, points[i].x, &flows);
    return RunIperf(config, flows);
  });
  Table table(IperfHeaders(x_name));
  for (std::size_t i = 0; i < points.size(); ++i) {
    AddIperfRow(&table, ProtectionModeName(points[i].mode),
                std::to_string(points[i].x), runs[i]);
  }
  EmitFigure(title, table);
}

}  // namespace bench
}  // namespace fsio

#endif  // FASTSAFE_BENCH_FIGURE_COMMON_H_
