// Extension experiment (paper §5, future work): integrating hugepages with
// F&S, plus the related-work hugepage baseline the paper cites.
//
//   fast-and-safe+huge   F&S with 2 MB-backed descriptors: one PT-L3 leaf
//                        mapping, one unmap and one invalidation per 2 MB,
//                        one IOTLB entry per descriptor -> far fewer IOTLB
//                        misses, still the strict safety property.
//   hugepage-persistent  Farshin et al. [16]: permanently mapped hugepage
//                        pools. Near-zero protection cost but the device
//                        keeps access to recycled buffers (weaker safety).
#include <string>
#include <vector>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  struct Cfg {
    const char* name;
    ProtectionMode mode;
    bool huge;
    const char* safety;
  };
  std::vector<Cfg> cfgs = {
      {"iommu-off", ProtectionMode::kOff, false, "none"},
      {"linux-strict", ProtectionMode::kStrict, false, "strict"},
      {"fast-and-safe", ProtectionMode::kFastSafe, false, "strict"},
      {"fast-and-safe+huge", ProtectionMode::kFastSafe, true, "strict"},
      {"hugepage-persistent", ProtectionMode::kHugepagePersistent, false, "weak"},
  };
  if (!bench::SmokeMode()) {
    // Full runs add the kernel-bypass design (IOMMU off, table-checked).
    cfgs.push_back({"capability", ProtectionMode::kCapability, false, "strict"});
  }

  struct Point {
    Cfg cfg;
    std::uint32_t flows;
  };
  std::vector<Point> points;
  for (const Cfg& cfg : cfgs) {
    for (std::uint32_t flows : bench::Sweep({5u, 40u})) {
      points.push_back(Point{cfg, flows});
    }
  }

  const auto runs = bench::ParallelSweep<bench::IperfRun>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].cfg.mode;
    config.cores = 5;
    config.host.use_hugepages = points[i].cfg.huge;
    return bench::RunIperf(config, points[i].flows);
  });

  Table table({"config", "safety", "gbps", "iotlb/pg", "reads/pg", "inv_req/pg"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& run = runs[i];
    const double inv =
        run.window.pages_of_data > 0
            ? static_cast<double>(run.window.raw_rx_host.at("dma.inv_requests")) /
                  static_cast<double>(run.window.pages_of_data)
            : 0.0;
    table.BeginRow();
    table.AddCell(std::string(points[i].cfg.name) + "/" + std::to_string(points[i].flows) +
                  "f");
    table.AddCell(points[i].cfg.safety);
    table.AddNumber(run.window.goodput_gbps, 1);
    table.AddNumber(run.window.iotlb_miss_per_page, 3);
    table.AddNumber(run.window.mem_reads_per_page, 3);
    table.AddNumber(inv, 3);
  }
  bench::EmitFigure(
      "Extension: hugepages x F&S (the paper's §5 future-work direction)\n"
      "F&S+huge keeps strict safety while cutting IOTLB misses ~5x further;\n"
      "persistent hugepages (related work) are marginally cheaper but weak.\n\n",
      table);
  return 0;
}
