// N→1 incast scaling over the Cluster topology layer (not in the paper's
// two-host testbed): N senders each blast one bulk flow at a single receiver,
// so the receiver's IOMMU sees concurrent DMA streams from N independent
// initiators. The question the two-host rig cannot answer: does the strict
// protection tax grow with fan-in, and does F&S still track IOMMU-off?
//
// The summary table reports the receiver's window plus the aggregate and
// min/max per-sender Tx rate (from the per-host WindowResults); the
// breakdown table prints every host of the largest fan-in point.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/apps/incast.h"

int main() {
  using namespace fsio;

  const std::vector<ProtectionMode> modes = bench::WithCapability(
      {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe});
  const std::vector<std::uint32_t> senders_axis = bench::Sweep({1u, 3u, 7u, 15u});

  struct Point {
    ProtectionMode mode;
    std::uint32_t senders;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : modes) {
    for (std::uint32_t senders : senders_axis) {
      points.push_back(Point{mode, senders});
    }
  }

  // One full per-host result vector per point (index == host id; host 0 is
  // the receiver).
  const auto runs = bench::ParallelSweep<std::vector<WindowResult>>(
      points.size(), [&](std::size_t i) {
        ClusterConfig config;
        config.num_hosts = points[i].senders + 1;
        config.mode = points[i].mode;
        config.cores = 5;
        Cluster cluster(config);
        StartIncast(&cluster, /*dst_host=*/0);
        cluster.RunUntil(bench::WarmupNs());
        return cluster.MeasureWindowAll(bench::WindowNs());
      });

  auto tx_gbps = [](const WindowResult& r) {
    auto it = r.raw_rx_host.find("nic.tx_bytes");
    const std::uint64_t bytes = it == r.raw_rx_host.end() ? 0 : it->second;
    return static_cast<double>(bytes) * 8.0 / static_cast<double>(bench::WindowNs());
  };

  Table table({"mode", "senders", "rx_gbps", "drop_%", "iotlb/pg", "reads/pg", "rx_cpu_%",
               "agg_tx_gbps", "min_tx", "max_tx"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::vector<WindowResult>& hosts = runs[i];
    const WindowResult& rx = hosts[0];
    double agg = 0.0;
    double min_tx = 1e30;
    double max_tx = 0.0;
    for (std::size_t h = 1; h < hosts.size(); ++h) {
      const double tx = tx_gbps(hosts[h]);
      agg += tx;
      min_tx = std::min(min_tx, tx);
      max_tx = std::max(max_tx, tx);
    }
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddCell(std::to_string(points[i].senders));
    table.AddNumber(rx.goodput_gbps, 1);
    table.AddNumber(rx.drop_rate * 100.0, 2);
    table.AddNumber(rx.iotlb_miss_per_page, 2);
    table.AddNumber(rx.mem_reads_per_page, 2);
    table.AddNumber(rx.cpu_utilization * 100.0, 1);
    table.AddNumber(agg, 1);
    table.AddNumber(min_tx, 1);
    table.AddNumber(max_tx, 1);
  }
  bench::EmitFigure(
      "Incast scaling: N senders -> 1 receiver through the Cluster API\n"
      "(bulk flow per sender, receiver metrics are Rx-window quantities)\n\n",
      table);

  // Per-host breakdown of the largest fan-in point for each mode.
  Table breakdown({"mode", "host", "role", "rx_gbps", "tx_gbps", "cpu_%", "reads/pg"});
  const std::uint32_t largest = senders_axis.back();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].senders != largest) {
      continue;
    }
    const std::vector<WindowResult>& hosts = runs[i];
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      breakdown.BeginRow();
      breakdown.AddCell(ProtectionModeName(points[i].mode));
      breakdown.AddCell(std::to_string(h));
      breakdown.AddCell(h == 0 ? "receiver" : "sender");
      breakdown.AddNumber(hosts[h].goodput_gbps, 1);
      breakdown.AddNumber(tx_gbps(hosts[h]), 1);
      breakdown.AddNumber(hosts[h].cpu_utilization * 100.0, 1);
      breakdown.AddNumber(hosts[h].mem_reads_per_page, 2);
    }
  }
  bench::EmitFigure("\nPer-host breakdown at the largest fan-in:\n\n", breakdown);
  return 0;
}
