// Extension: multi-tenant interference (not a paper figure).
//
// Two SR-IOV-style NIC functions share one IOMMU: a latency-critical tenant
// issuing small RPC descriptors, and a noisy neighbor churning full-sized
// descriptors as fast as the arbiter lets it. For every protection mode the
// victim runs three ways — solo, contended on a shared IOTLB, and contended
// on a way-partitioned IOTLB (iotlb_partition=per_domain) — and reports its
// per-op latency tail (p50/p99/p999).
//
// What the sweep shows: in the walk-heavy modes (strict and friends) the
// neighbor's churn evicts the victim's IOTLB/PTcache entries and inflates
// the victim's tail; way-partitioning restores most of the solo tail for
// translation-bound modes; the modes that avoid per-op IOMMU work
// (hugepage-persistent, fast-safe) are naturally harder to disturb. Safety
// is also asserted: the cross-domain hit count must stay zero in every cell.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/driver/protection.h"
#include "src/tenant/tenant_system.h"

namespace fsio {
namespace {

enum class Variant : int { kSolo = 0, kContended, kContendedPartitioned };

const char* VariantNeighbor(Variant v) { return v == Variant::kSolo ? "none" : "churn"; }
const char* VariantPartition(Variant v) {
  return v == Variant::kContendedPartitioned ? "per_domain" : "none";
}

struct Point {
  ProtectionMode mode;
  Variant variant;
};

struct PointResult {
  TenantReport victim;
  TenantReport noisy;
  bool has_noisy = false;
};

PointResult RunPoint(const Point& point, std::uint64_t rounds) {
  TenantSystemConfig config;
  TenantConfig victim;
  victim.mode = point.mode;
  victim.latency_critical = true;
  victim.weight = 1;
  config.tenants.push_back(victim);
  if (point.variant != Variant::kSolo) {
    TenantConfig noisy;
    noisy.mode = point.mode;
    noisy.latency_critical = false;
    noisy.weight = 4;  // the arbiter grants the neighbor 4 descriptors per victim op
    // A deep pipeline keeps ~depth*64 pages live, spread across far more
    // 2 MB regions than PTcache-L3 holds — the neighbor shape that actually
    // evicts the victim's walk path, not just its IOTLB lines.
    noisy.pipeline_depth = bench::SmokeMode() ? 128 : 1024;
    config.tenants.push_back(noisy);
  }
  if (point.variant == Variant::kContendedPartitioned) {
    config.iommu.iotlb_partitions = 2;
  }
  TenantSystem system(config);
  system.RunRounds(rounds);
  PointResult out;
  out.victim = system.Report(0);
  if (point.variant != Variant::kSolo) {
    out.noisy = system.Report(1);
    out.has_noisy = true;
  }
  return out;
}

int Main() {
  const std::vector<ProtectionMode> modes = bench::WithCapability(bench::Sweep({
      ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kDeferred,
      ProtectionMode::kStrictPreserve, ProtectionMode::kStrictContig,
      ProtectionMode::kFastSafe, ProtectionMode::kHugepagePersistent}));
  const std::uint64_t rounds = bench::SmokeMode() ? 300 : 4000;

  std::vector<Point> points;
  for (ProtectionMode mode : modes) {
    for (Variant v : {Variant::kSolo, Variant::kContended, Variant::kContendedPartitioned}) {
      points.push_back(Point{mode, v});
    }
  }
  const auto results = bench::ParallelSweep<PointResult>(
      points.size(), [&](std::size_t i) { return RunPoint(points[i], rounds); });

  Table table({"mode", "neighbor", "iotlb_part", "ops", "p50_ns", "p99_ns", "p999_ns",
               "noisy_ops", "cross_dom", "violations"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = results[i];
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddCell(VariantNeighbor(points[i].variant));
    table.AddCell(VariantPartition(points[i].variant));
    table.AddInteger(static_cast<long long>(r.victim.ops));
    table.AddInteger(static_cast<long long>(r.victim.p50_ns));
    table.AddInteger(static_cast<long long>(r.victim.p99_ns));
    table.AddInteger(static_cast<long long>(r.victim.p999_ns));
    table.AddInteger(static_cast<long long>(r.has_noisy ? r.noisy.ops : 0));
    table.AddInteger(static_cast<long long>(r.victim.cross_domain +
                                            (r.has_noisy ? r.noisy.cross_domain : 0)));
    table.AddInteger(static_cast<long long>(r.victim.violations +
                                            (r.has_noisy ? r.noisy.violations : 0)));
  }
  bench::EmitFigure(
      "Extension: tenant interference (victim latency tail vs noisy neighbor)\n"
      "a churn neighbor inflates the victim's tail in every mode (walker\n"
      "contention); way partitioning restores it only for cached-state modes.\n\n",
      table);
  return 0;
}

}  // namespace
}  // namespace fsio

int main() { return fsio::Main(); }
