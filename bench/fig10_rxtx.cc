// Figure 10: concurrent Rx AND Tx data traffic (extreme Rx/Tx interference).
//
// Both hosts simultaneously send and receive bulk data, one flow per core
// per direction, cores per direction in {1, 2, 3, 4}. Paper results (Icelake
// testbed): with IOMMU strict, Rx throughput degrades up to ~80% even at 4
// flows; Tx degrades less (reads tolerate latency); F&S matches IOMMU-off.
#include <map>
#include <string>
#include <vector>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint32_t dir_cores;
  };
  std::vector<Point> points;
  for (ProtectionMode mode : bench::WithCapability(
           {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe})) {
    for (std::uint32_t dir_cores : bench::Sweep({1u, 2u, 3u, 4u})) {
      points.push_back(Point{mode, dir_cores});
    }
  }

  struct Row {
    double rx_gbps = 0;
    double tx_gbps = 0;
    double reads = 0;
    double drop_pct = 0;
  };
  const auto rows = bench::ParallelSweep<Row>(points.size(), [&](std::size_t i) {
    TestbedConfig config;
    config.mode = points[i].mode;
    config.cores = 8;  // larger-core-count server (Icelake-style)
    Testbed testbed(config);
    // Forward direction (host0 -> host1) on cores [0, dir_cores).
    StartIperf(&testbed, points[i].dir_cores);
    // Reverse direction (host1 -> host0) on cores [4, 4 + dir_cores).
    StartReverseIperf(&testbed, points[i].dir_cores, config.cores, /*core_offset=*/4);

    testbed.RunUntil(bench::WarmupNs());
    // Rx throughput measured at host 1; Tx throughput = host 0's receive
    // direction is the reverse traffic, measured at host 0.
    const auto h1_before = testbed.host(1).stats().Snapshot();
    const auto h0_before = testbed.host(0).stats().Snapshot();
    testbed.RunUntil(testbed.ev().now() + bench::WindowNs());
    auto delta_bytes = [](const std::map<std::string, std::uint64_t>& before,
                          const std::map<std::string, std::uint64_t>& after) {
      auto d = StatsRegistry::Delta(before, after);
      return d["host.app_rx_bytes"];
    };
    const auto h1_after = testbed.host(1).stats().Snapshot();
    const auto h0_after = testbed.host(0).stats().Snapshot();
    Row row;
    row.rx_gbps = static_cast<double>(delta_bytes(h1_before, h1_after)) * 8.0 /
                  static_cast<double>(bench::WindowNs());
    row.tx_gbps = static_cast<double>(delta_bytes(h0_before, h0_after)) * 8.0 /
                  static_cast<double>(bench::WindowNs());
    auto d1 = StatsRegistry::Delta(h1_before, h1_after);
    const double pages = static_cast<double>(d1["nic.rx_wire_bytes"] / kPageSize);
    row.reads = pages > 0 ? static_cast<double>(d1["iommu.mem_reads"]) / pages : 0.0;
    const std::uint64_t drops = d1["nic.drops_buffer"] + d1["nic.drops_nodesc"];
    const std::uint64_t arrived = d1["nic.rx_packets"] + drops;
    row.drop_pct =
        arrived > 0 ? 100.0 * static_cast<double>(drops) / static_cast<double>(arrived) : 0.0;
    return row;
  });

  Table table({"mode", "cores/dir", "rx_gbps", "tx_gbps", "rx_reads/pg", "rx_drop_%"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.BeginRow();
    table.AddCell(ProtectionModeName(points[i].mode));
    table.AddCell(std::to_string(points[i].dir_cores));
    table.AddNumber(rows[i].rx_gbps, 1);
    table.AddNumber(rows[i].tx_gbps, 1);
    table.AddNumber(rows[i].reads, 2);
    table.AddNumber(rows[i].drop_pct, 2);
  }
  bench::EmitFigure(
      "Figure 10: concurrent Rx+Tx data traffic (Rx/Tx interference)\n"
      "(expected: strict Rx collapses hardest; F&S ~ iommu-off; Tx degrades less)\n\n",
      table);
  return 0;
}
