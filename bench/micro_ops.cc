// Microbenchmarks (google-benchmark) for the substrate data structures:
// IOVA allocation paths, IO page table operations, IOMMU cache operations
// and reuse-distance tracking. These measure simulator-implementation speed
// (how fast the model itself runs), complementing the figure benches which
// measure *simulated* performance.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/cache/set_assoc_cache.h"
#include "src/iommu/iommu.h"
#include "src/iova/iova_allocator.h"
#include "src/iova/rbtree_allocator.h"
#include "src/mem/memory_system.h"
#include "src/pagetable/io_page_table.h"
#include "src/simcore/rng.h"
#include "src/stats/reuse_distance.h"

namespace fsio {
namespace {

void BM_RbTreeAllocFree(benchmark::State& state) {
  RbTreeAllocator tree(1ULL << 36);
  std::vector<std::uint64_t> live;
  Rng rng(1);
  for (auto _ : state) {
    if (live.size() < 1024 || rng.NextBool(0.5)) {
      const std::uint64_t pfn = tree.Alloc(1 + rng.NextBelow(64));
      if (pfn != RbTreeAllocator::kInvalidPfn) {
        live.push_back(pfn);
      }
    } else {
      const std::size_t idx = rng.NextBelow(live.size());
      tree.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RbTreeAllocFree);

void BM_IovaRcacheHit(benchmark::State& state) {
  StatsRegistry stats;
  IovaAllocator alloc(IovaAllocatorConfig{}, &stats);
  for (auto _ : state) {
    const Iova iova = alloc.Alloc(0, 1);
    alloc.Free(0, iova, 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IovaRcacheHit);

void BM_PageTableMapUnmap(benchmark::State& state) {
  IoPageTable pt;
  const std::uint64_t span = state.range(0);
  Iova iova = 0x1000000000ULL;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < span; ++i) {
      pt.Map(iova + i * kPageSize, 0x1000 + i * kPageSize);
    }
    pt.Unmap(iova, span * kPageSize);
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_PageTableMapUnmap)->Arg(1)->Arg(64)->Arg(512);

void BM_PageTableWalk(benchmark::State& state) {
  IoPageTable pt;
  Rng rng(7);
  std::vector<Iova> iovas;
  for (int i = 0; i < 4096; ++i) {
    const Iova iova = (rng.NextBelow(1 << 22)) << kPageShift;
    if (pt.Map(iova, 0x1000)) {
      iovas.push_back(iova);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Walk(iovas[i++ % iovas.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableWalk);

void BM_SetAssocCacheLookup(benchmark::State& state) {
  SetAssocCache cache(16, 4);
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    cache.Insert(i, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(rng.NextBelow(96)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocCacheLookup);

void BM_IommuTranslateWarm(benchmark::State& state) {
  StatsRegistry stats;
  MemorySystem memory(MemoryConfig{}, &stats);
  IoPageTable pt;
  Iommu iommu(IommuConfig{}, &memory, &pt, &stats);
  for (int i = 0; i < 16; ++i) {
    pt.Map(0x1000000 + static_cast<Iova>(i) * kPageSize, 0x1000);
  }
  TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iommu.Translate(0x1000000, t));
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IommuTranslateWarm);

void BM_ReuseDistanceAccess(benchmark::State& state) {
  ReuseDistanceTracker tracker;
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Access(rng.NextBelow(256)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReuseDistanceAccess);

}  // namespace
}  // namespace fsio

BENCHMARK_MAIN();
