// Figure 8 (a-e): F&S vs Linux strict vs IOMMU-off, sweeping ring size.
//
// Paper results: F&S holds line rate as the IOVA working set grows (at most
// 0.053 PTcache-L3 misses/page) with a tiny CPU-bound gap at ring 2048
// (§4.4); locality stays flat because it is guaranteed per descriptor.
#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  bench::RunIperfFigure<std::uint32_t>(
      "Figure 8: F&S maintains locality as the IO working set grows\n"
      "(expected: fast-and-safe ~ iommu-off at every ring size)\n\n",
      "ring",
      bench::WithCapability(
          {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}),
      bench::Sweep({256u, 512u, 1024u, 2048u}), /*flows_or_zero=*/5,
      [](TestbedConfig* config, std::uint32_t ring, std::uint32_t*) {
        config->cores = 5;
        config->ring_size_pkts = ring;
      });
  return 0;
}
