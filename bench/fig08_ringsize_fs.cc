// Figure 8 (a-e): F&S vs Linux strict vs IOMMU-off, sweeping ring size.
//
// Paper results: F&S holds line rate as the IOVA working set grows (at most
// 0.053 PTcache-L3 misses/page) with a tiny CPU-bound gap at ring 2048
// (§4.4); locality stays flat because it is guaranteed per descriptor.
#include <iostream>

#include "bench/figure_common.h"

int main() {
  using namespace fsio;
  Table table(bench::IperfHeaders("ring"));
  for (ProtectionMode mode :
       {ProtectionMode::kOff, ProtectionMode::kStrict, ProtectionMode::kFastSafe}) {
    for (std::uint32_t ring : {256u, 512u, 1024u, 2048u}) {
      TestbedConfig config;
      config.mode = mode;
      config.cores = 5;
      config.ring_size_pkts = ring;
      const auto run = bench::RunIperf(config, 5);
      bench::AddIperfRow(&table, ProtectionModeName(mode), std::to_string(ring), run);
    }
  }
  std::cout << "Figure 8: F&S maintains locality as the IO working set grows\n"
               "(expected: fast-and-safe ~ iommu-off at every ring size)\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
