// §2.2 analytical model validation:  T = p / (l0 + M * lm).
//
// The paper fits l0 = 65 ns and lm = 197 ns from its 5- and 10-flow strict
// runs and then predicts measured throughput within ~10% across experiments.
// This bench repeats the exercise on the simulator: fit (l0, lm) from two
// strict configurations, then compare the model's predictions against the
// measured throughput of every other configuration.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/stats/linear_fit.h"

int main() {
  using namespace fsio;

  struct Point {
    ProtectionMode mode;
    std::uint32_t flows;
    std::uint32_t ring;
    std::string label;
  };
  // The fit below uses points[0] and points[3], as the paper fits from its
  // strict runs; keep the list order stable.
  const std::vector<Point> points = {
      {ProtectionMode::kStrict, 5, 256, "strict-5f"},
      {ProtectionMode::kStrict, 10, 256, "strict-10f"},
      {ProtectionMode::kStrict, 20, 256, "strict-20f"},
      {ProtectionMode::kStrict, 40, 256, "strict-40f"},
      {ProtectionMode::kStrict, 5, 1024, "strict-ring1024"},
      {ProtectionMode::kStrict, 5, 2048, "strict-ring2048"},
      {ProtectionMode::kFastSafe, 5, 256, "fs-5f"},
      {ProtectionMode::kFastSafe, 40, 256, "fs-40f"},
  };

  struct Observation {
    double reads_per_page = 0;
    double gbps = 0;
  };
  const auto observations =
      bench::ParallelSweep<Observation>(points.size(), [&](std::size_t i) {
        TestbedConfig config;
        config.mode = points[i].mode;
        config.cores = 5;
        config.ring_size_pkts = points[i].ring;
        const auto result = bench::RunIperf(config, points[i].flows);
        return Observation{result.window.mem_reads_per_page, result.window.goodput_gbps};
      });

  // Fit from two strict points, as the paper does.
  const double p = 4096.0;
  const ThroughputModel model = FitThroughputModel(
      p, {observations[0].reads_per_page, observations[3].reads_per_page},
      {observations[0].gbps / 8.0, observations[3].gbps / 8.0});

  std::cout << "Model T = p / (l0 + M*lm), fitted from strict 5- and 40-flow runs:\n";
  std::cout << "  l0 = " << model.l0_ns << " ns   (paper: 65 ns)\n";
  std::cout << "  lm = " << model.lm_ns << " ns   (paper: 197 ns)\n\n";

  Table table({"config", "M(reads/pg)", "measured_gbps", "predicted_gbps", "error_%"});
  double worst = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Observation& obs = observations[i];
    const double predicted =
        std::min(model.PredictBytesPerNs(p, obs.reads_per_page) * 8.0, 98.6);
    const double err = obs.gbps > 0 ? 100.0 * (predicted - obs.gbps) / obs.gbps : 0.0;
    worst = std::max(worst, std::abs(err));
    table.BeginRow();
    table.AddCell(points[i].label);
    table.AddNumber(obs.reads_per_page, 2);
    table.AddNumber(obs.gbps, 1);
    table.AddNumber(predicted, 1);
    table.AddNumber(err, 1);
  }
  table.Print(std::cout);
  std::cout << "\nworst |error| = " << worst << "% (paper: within ~10%)\n";
  return 0;
}
