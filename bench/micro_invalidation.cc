// Microbenchmark of the *simulated* CPU cost of the unmap+invalidate path:
// per-page invalidations (Linux strict) vs one batched invalidation per
// descriptor (F&S idea B). This is the Fig. 6 mechanism in isolation: the
// reported "cpu_ns" metric is simulated driver CPU time per descriptor.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/driver/dma_api.h"
#include "src/iommu/iommu.h"
#include "src/iova/iova_allocator.h"
#include "src/mem/memory_system.h"
#include "src/pagetable/io_page_table.h"
#include "src/stats/counters.h"

namespace fsio {
namespace {

struct Rig {
  StatsRegistry stats;
  MemorySystem memory{MemoryConfig{}, &stats};
  IoPageTable page_table;
  Iommu iommu{IommuConfig{}, &memory, &page_table, &stats};
  IovaAllocator iova{IovaAllocatorConfig{}, &stats};
  std::unique_ptr<DmaApi> dma;

  explicit Rig(ProtectionMode mode) {
    DmaApiConfig config;
    config.mode = mode;
    dma = std::make_unique<DmaApi>(config, &iova, &page_table, &iommu, &stats);
  }
};

void RunDescriptorCycle(benchmark::State& state, ProtectionMode mode) {
  Rig rig(mode);
  std::vector<PhysAddr> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(0x10000000 + static_cast<PhysAddr>(i) * kPageSize);
  }
  TimeNs t = 0;
  std::uint64_t total_sim_cpu = 0;
  for (auto _ : state) {
    auto mapped = rig.dma->MapPages(0, frames);
    const auto unmapped = rig.dma->UnmapDescriptor(0, mapped.mappings, t);
    total_sim_cpu += mapped.cpu_ns + unmapped.cpu_ns;
    t += 100000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["sim_cpu_ns_per_desc"] = benchmark::Counter(
      static_cast<double>(total_sim_cpu) / static_cast<double>(state.iterations()));
}

void BM_DescriptorCycle_Strict(benchmark::State& state) {
  RunDescriptorCycle(state, ProtectionMode::kStrict);
}
BENCHMARK(BM_DescriptorCycle_Strict);

void BM_DescriptorCycle_StrictPreserve(benchmark::State& state) {
  RunDescriptorCycle(state, ProtectionMode::kStrictPreserve);
}
BENCHMARK(BM_DescriptorCycle_StrictPreserve);

void BM_DescriptorCycle_FastSafe(benchmark::State& state) {
  RunDescriptorCycle(state, ProtectionMode::kFastSafe);
}
BENCHMARK(BM_DescriptorCycle_FastSafe);

void BM_DescriptorCycle_Deferred(benchmark::State& state) {
  RunDescriptorCycle(state, ProtectionMode::kDeferred);
}
BENCHMARK(BM_DescriptorCycle_Deferred);

}  // namespace
}  // namespace fsio

BENCHMARK_MAIN();
